//! Timer-key packing.
//!
//! The sim's [`TimerKey`](gryphon_sim::TimerKey) is a bare `u64`; brokers
//! pack `(kind, epoch, pubend, param)` into it. The epoch is bumped on
//! crash recovery so periodic timers armed before a crash are recognized
//! as stale and dropped instead of doubling up.

/// Timer kinds used by [`Broker`](crate::Broker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Pubend batch window closed: snapshot the batch, start the disk
    /// write (param = pubend).
    PhbCommit,
    /// The in-flight disk write became durable (param = pubend).
    PhbCommitDone,
    /// Idle-pubend silence emission (all hosted pubends).
    PhbSilence,
    /// Release aggregation + log chopping.
    Release,
    /// Persist `released(s,p)` / `latestDelivered(p)` to the meta table.
    MetaPersist,
    /// PFS group commit.
    PfsSync,
    /// Re-nack timed-out curiosity ranges.
    RetryNacks,
    /// Silence messages to idle subscribers.
    ClientSilence,
    /// Trim knowledge caches to the retention window.
    CacheTrim,
    /// A modeled PFS batch read completed (param = sub slot, pubend).
    CatchupRead,
    /// A checkpoint-commit worker finished its transaction (param =
    /// worker index).
    CtCommit,
    /// Flush a child's batched knowledge (param = child node id).
    KnowledgeFlush,
}

impl Kind {
    fn code(self) -> u64 {
        match self {
            Kind::PhbCommit => 1,
            Kind::PhbSilence => 2,
            Kind::Release => 3,
            Kind::MetaPersist => 4,
            Kind::PfsSync => 5,
            Kind::RetryNacks => 6,
            Kind::ClientSilence => 7,
            Kind::CacheTrim => 8,
            Kind::CatchupRead => 9,
            Kind::CtCommit => 10,
            Kind::PhbCommitDone => 11,
            Kind::KnowledgeFlush => 12,
        }
    }

    fn from_code(code: u64) -> Option<Kind> {
        Some(match code {
            1 => Kind::PhbCommit,
            2 => Kind::PhbSilence,
            3 => Kind::Release,
            4 => Kind::MetaPersist,
            5 => Kind::PfsSync,
            6 => Kind::RetryNacks,
            7 => Kind::ClientSilence,
            8 => Kind::CacheTrim,
            9 => Kind::CatchupRead,
            10 => Kind::CtCommit,
            11 => Kind::PhbCommitDone,
            12 => Kind::KnowledgeFlush,
            _ => return None,
        })
    }
}

/// Decoded timer key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// What fired.
    pub kind: Kind,
    /// Restart epoch the timer was armed in.
    pub epoch: u8,
    /// Pubend parameter (16 bits).
    pub pubend: u16,
    /// Free-form parameter (subscriber slot / worker index).
    pub param: u32,
}

/// Packs a timer key: `kind(8) | epoch(8) | pubend(16) | param(32)`.
pub fn pack(kind: Kind, epoch: u8, pubend: u16, param: u32) -> gryphon_sim::TimerKey {
    gryphon_sim::TimerKey(
        (kind.code() << 56) | ((epoch as u64) << 48) | ((pubend as u64) << 32) | param as u64,
    )
}

/// Unpacks a timer key (`None` for foreign keys).
pub fn unpack(key: gryphon_sim::TimerKey) -> Option<Decoded> {
    let kind = Kind::from_code(key.0 >> 56)?;
    Some(Decoded {
        kind,
        epoch: ((key.0 >> 48) & 0xFF) as u8,
        pubend: ((key.0 >> 32) & 0xFFFF) as u16,
        param: (key.0 & 0xFFFF_FFFF) as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for kind in [
            Kind::PhbCommit,
            Kind::PhbCommitDone,
            Kind::PhbSilence,
            Kind::Release,
            Kind::MetaPersist,
            Kind::PfsSync,
            Kind::RetryNacks,
            Kind::ClientSilence,
            Kind::CacheTrim,
            Kind::CatchupRead,
            Kind::CtCommit,
            Kind::KnowledgeFlush,
        ] {
            let key = pack(kind, 7, 65_535, 0xDEAD_BEEF);
            let d = unpack(key).unwrap();
            assert_eq!(d.kind, kind);
            assert_eq!(d.epoch, 7);
            assert_eq!(d.pubend, 65_535);
            assert_eq!(d.param, 0xDEAD_BEEF);
        }
    }

    #[test]
    fn foreign_keys_rejected() {
        assert!(unpack(gryphon_sim::TimerKey(0)).is_none());
        assert!(unpack(gryphon_sim::TimerKey(0xFF << 56)).is_none());
    }
}
