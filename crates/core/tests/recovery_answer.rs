//! ISSUE 8 acceptance: a chopped or crash-lost tick is never answered
//! `S` after recovery.
//!
//! The dangerous window is release-time garbage collection: chopping a
//! prefix deletes whole segment files (immediately durable) while the
//! chop record itself sits in the unsynced tail. A crash inside that
//! window used to leave the events gone but the boundary forgotten — and
//! the pubend would then answer `S` ("there was never an event here")
//! for ticks it had once emitted as `D`. The storage layer now orders
//! marker → chop frame → sync → file deletion, so recovery always lands
//! in one of two consistent worlds: the chop fully applied (`L`) or
//! fully forgotten (`D`).

use gryphon::broker::Pubend;
use gryphon::config::BrokerConfig;
use gryphon_storage::{EventLog, MemFactory, VolumeConfig};
use gryphon_types::{KnowledgePart, PubendId, PublishMsg, TickKind, Timestamp};

const P: PubendId = PubendId(0);

fn small_segments() -> VolumeConfig {
    VolumeConfig {
        // ~60-byte event frames: a few events per segment, so a prefix
        // chop reliably kills whole segments and triggers GC.
        segment_bytes: 192,
        ..VolumeConfig::default()
    }
}

fn publish(p: &mut Pubend, now: u64) {
    p.publish(
        PublishMsg {
            pubend: P,
            attrs: Default::default(),
            payload: bytes::Bytes::from(vec![now as u8; 16]),
        },
        Timestamp(now),
    );
}

fn kind_at(parts: &[KnowledgePart], t: u64) -> Option<TickKind> {
    for part in parts {
        let (f, to) = part.range();
        if f.0 <= t && t <= to.0 {
            return Some(match part {
                KnowledgePart::Silence { .. } => TickKind::S,
                KnowledgePart::Data(_) => TickKind::D,
                KnowledgePart::Lost { .. } => TickKind::L,
            });
        }
    }
    None
}

/// Rebuilds the pubend the way `Broker::boot` does after a crash:
/// reopen the log, seed cursors at the (advanced) wall clock, restore
/// the lost prefix from the recovered chop boundary.
fn recover(factory: &MemFactory, now: u64) -> (Pubend, EventLog) {
    let log = EventLog::open(Box::new(factory.clone()), "el", small_segments()).unwrap();
    let mut pe = Pubend::new(P, Timestamp(now));
    let chopped = log.chopped_below_ts(P);
    if chopped > Timestamp::ZERO {
        pe.restore_lost_to(chopped.prev());
    }
    (pe, log)
}

/// Crash immediately after a release chopped (and GC'd) a prefix: the
/// chopped ticks must answer `L`, the surviving ticks `D` — no tick in
/// the emitted range may answer `S`.
#[test]
fn crash_after_release_gc_answers_lost_not_silence() {
    for chop_at in [4u64, 9, 12, 19] {
        let factory = MemFactory::new();
        {
            let mut log =
                EventLog::open(Box::new(factory.clone()), "el", small_segments()).unwrap();
            let mut pe = Pubend::new(P, Timestamp::ZERO);
            for t in 1..=20 {
                publish(&mut pe, t);
            }
            pe.commit(&mut log).unwrap(); // durable + emitted
            let cfg = BrokerConfig::default();
            pe.apply_release(
                Timestamp(chop_at),
                Timestamp(20),
                Timestamp(25),
                &cfg,
                &mut log,
            )
            .unwrap();
            // No explicit sync: the kill happens right here. Whole-segment
            // GC inside the chop must have made the boundary durable on
            // its own.
        }
        factory.crash_lose_unsynced();

        let (pe, mut log) = recover(&factory, 25);
        let parts = pe.answer(Timestamp(1), Timestamp(20), &mut log).unwrap();
        for t in 1..=20 {
            let kind = kind_at(&parts, t);
            assert_ne!(
                kind,
                Some(TickKind::S),
                "tick {t} answered S after chop-at-{chop_at} crash"
            );
            let expect = if t <= chop_at {
                TickKind::L
            } else {
                TickKind::D
            };
            assert_eq!(kind, Some(expect), "tick {t} (chop at {chop_at})");
        }
    }
}

/// Crash that loses an unsynced chop *entirely* (no segment died, so no
/// forced sync): recovery must forget the chop atomically — every tick
/// still answers `D`, never a half-applied state with `S` holes.
#[test]
fn crash_losing_whole_chop_forgets_it_atomically() {
    let factory = MemFactory::new();
    {
        // Big segments: the chop below cannot kill a whole segment, so
        // nothing forces a sync and the whole chop sits in the torn tail.
        let mut log =
            EventLog::open(Box::new(factory.clone()), "el", VolumeConfig::default()).unwrap();
        let mut pe = Pubend::new(P, Timestamp::ZERO);
        for t in 1..=10 {
            publish(&mut pe, t);
        }
        pe.commit(&mut log).unwrap();
        let cfg = BrokerConfig::default();
        pe.apply_release(Timestamp(6), Timestamp(10), Timestamp(15), &cfg, &mut log)
            .unwrap();
    }
    factory.crash_lose_unsynced();

    let factory2 = factory.clone();
    let log = EventLog::open(Box::new(factory2), "el", VolumeConfig::default()).unwrap();
    assert_eq!(
        log.chopped_below_ts(P),
        Timestamp::ZERO,
        "unsynced chop must vanish"
    );
    let (pe, mut log) = recover(&factory, 15);
    let parts = pe.answer(Timestamp(1), Timestamp(10), &mut log).unwrap();
    for t in 1..=10 {
        assert_eq!(
            kind_at(&parts, t),
            Some(TickKind::D),
            "tick {t} must still be answerable from the log"
        );
    }
}

/// A torn tail of never-committed events: those ticks were never emitted
/// as knowledge (emission happens only after the durable sync), so after
/// recovery they are simply absent — and everything durable still
/// answers exactly as before the crash.
#[test]
fn torn_uncommitted_tail_leaves_durable_answers_intact() {
    let factory = MemFactory::new();
    {
        let mut log = EventLog::open(Box::new(factory.clone()), "el", small_segments()).unwrap();
        let mut pe = Pubend::new(P, Timestamp::ZERO);
        for t in 1..=8 {
            publish(&mut pe, t);
        }
        pe.commit(&mut log).unwrap();
        // Torn: appended to the log but never synced, never emitted.
        for t in 9..=11 {
            publish(&mut pe, t);
        }
        assert!(pe.begin_commit());
        // The crash lands between the appends and the sync: replicate
        // finish_commit's appends without its durability point.
        for t in 9..=11u64 {
            let e = std::sync::Arc::new(
                gryphon_types::Event::builder(P)
                    .payload(vec![t as u8; 16])
                    .build(Timestamp(t)),
            );
            log.append(&e).unwrap();
        }
    }
    factory.crash_lose_unsynced();

    let (pe, mut log) = recover(&factory, 20);
    let parts = pe.answer(Timestamp(1), Timestamp(8), &mut log).unwrap();
    for t in 1..=8 {
        assert_eq!(kind_at(&parts, t), Some(TickKind::D), "durable tick {t}");
    }
    // The torn ticks never became knowledge. What survives of them is
    // whatever a segment roll happened to seal (sealing syncs) — always
    // a contiguous prefix, never a hole.
    let mut lost_from = None;
    for t in 9..=11u64 {
        match log.read_at(P, Timestamp(t)).unwrap() {
            Some(e) => {
                assert!(lost_from.is_none(), "hole before torn tick {t}");
                assert_eq!(e.ts, Timestamp(t));
            }
            None => {
                lost_from.get_or_insert(t);
            }
        }
    }
    assert!(
        lost_from.is_some(),
        "the unsynced tail cannot be fully durable"
    );
}
