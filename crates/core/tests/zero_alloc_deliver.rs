//! Proves the SHB constream deliver path allocates nothing per event
//! once warm (ISSUE 7 / DESIGN.md §15).
//!
//! The path under test is the full steady-state pipeline for connected
//! subscribers: knowledge ingest → matching (slab slots) → PFS write →
//! slab indexing → delivery send. After warm-up, every buffer it needs
//! is reusable — the event buffer (`Arc` clones), the match-slot buffer,
//! the PFS scratch encodings, the cached gauge-name strings — so a
//! measured burst must leave the process-wide allocation counter
//! untouched.
//!
//! The burst re-processes a span whose PFS records are already durable
//! (exactly the crash-recovery replay the constream performs), so the
//! PFS write is an idempotent no-op and deliveries still flow.
//!
//! Single `#[test]` on purpose: the counter is process-wide and the
//! default harness is multi-threaded, so sibling tests would be noise.

use gryphon::broker::Shb;
use gryphon::config::BrokerConfig;
use gryphon_sim::{NodeCtx, TimerKey};
use gryphon_storage::MemFactory;
use gryphon_streams::KnowledgeStream;
use gryphon_types::{Event, NetMsg, NodeId, PubendId, SubscriberId, Timestamp};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates verbatim to `System`; the counter update has no effect
// on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const P: PubendId = PubendId(0);
const CLIENT: NodeId = NodeId(9);

struct StubCtx {
    sent: Vec<(NodeId, NetMsg)>,
    rng: SmallRng,
}

impl NodeCtx for StubCtx {
    fn now_us(&self) -> u64 {
        0
    }
    fn me(&self) -> NodeId {
        NodeId(1)
    }
    fn send(&mut self, to: NodeId, msg: NetMsg) {
        self.sent.push((to, msg));
    }
    fn set_timer(&mut self, _delay_us: u64, _key: TimerKey) {}
    fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
    fn work(&mut self, _cost_us: u64) {}
    fn record(&mut self, _series: &str, _value: f64) {}
    fn count(&mut self, _counter: &str, _delta: f64) {}
}

fn reconnect_all(shb: &mut Shb, subs: u64, config: &BrokerConfig, ctx: &mut StubCtx) {
    for i in 0..subs {
        shb.connect(
            SubscriberId(i + 1),
            CLIENT,
            None,
            Some(gryphon_types::SubscriptionSpec::new(format!(
                "class = {}",
                i % 16
            ))),
            false,
            false,
            &HashMap::new(),
            None,
            config,
            ctx,
        )
        .expect("connect");
    }
}

#[test]
fn constream_deliver_allocates_nothing_after_warmup() {
    let config = BrokerConfig::default();
    let mut ctx = StubCtx {
        sent: Vec::new(),
        rng: SmallRng::seed_from_u64(0),
    };
    let mut shb = Shb::open(&MemFactory::new(), "t", &config);
    const SUBS: u64 = 48;
    const TICKS: u64 = 200;
    reconnect_all(&mut shb, SUBS, &config, &mut ctx);

    // A fully known cache: one event per tick, spread across 16 classes,
    // so each event matches SUBS/16 subscribers.
    let mut cache = KnowledgeStream::new();
    for t in 1..=TICKS {
        let e = Event::builder(P)
            .attr("class", (t % 16) as i64)
            .build_ref(Timestamp(t));
        assert!(cache.set_data(e));
    }
    cache.set_silence(Timestamp(1), Timestamp(TICKS));

    // Warm-up pass: grows every reusable buffer and writes the PFS
    // records for [1, TICKS].
    shb.constream_advance(P, &cache, Timestamp(TICKS), &config, &mut ctx);
    let warm_delivered = shb.delivered;
    assert_eq!(warm_delivered, TICKS * (SUBS / 16), "workload must match");

    // Crash recovery: connections drop, the volatile cursor rewinds to
    // the (unsynced) durable point, and the clients reconnect. The next
    // advance re-processes the same span — deliveries flow again while
    // the PFS writes are idempotent no-ops.
    shb.post_restart();
    reconnect_all(&mut shb, SUBS, &config, &mut ctx);
    ctx.sent.clear(); // capacity retained from the warm-up pass

    let before = ALLOCS.load(Ordering::SeqCst);
    shb.constream_advance(P, &cache, Timestamp(TICKS), &config, &mut ctx);
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        shb.delivered,
        warm_delivered * 2,
        "measured pass must re-deliver the full span"
    );
    assert_eq!(
        after - before,
        0,
        "constream deliver path allocated on the warm path"
    );
}
