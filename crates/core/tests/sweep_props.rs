//! Property tests for the SHB population sweep: for arbitrary slab
//! populations (idle / connected / parked mixes with arbitrary window
//! counters), `sweep_population` must report exactly what a naive
//! recount of the slab says, attribute exactly the non-zero window
//! deltas in slot order, and leave the counters drained (DESIGN.md §18).

use gryphon::broker::Shb;
use gryphon::config::BrokerConfig;
use gryphon_sim::sketch::{DIM_SUB_BYTES, DIM_SUB_LAG, DIM_SUB_NACKS};
use gryphon_sim::{NodeCtx, TimerKey};
use gryphon_storage::MemFactory;
use gryphon_types::{NetMsg, NodeId, SubscriberId, SubscriptionSpec};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Captures `attribute` calls in arrival order; everything else is a
/// sink.
struct RecordingCtx {
    now_us: u64,
    rng: SmallRng,
    attributed: Vec<(&'static str, u64, u64)>,
}

impl RecordingCtx {
    fn at(now_us: u64) -> Self {
        RecordingCtx {
            now_us,
            rng: SmallRng::seed_from_u64(0),
            attributed: Vec::new(),
        }
    }
}

impl NodeCtx for RecordingCtx {
    fn now_us(&self) -> u64 {
        self.now_us
    }
    fn me(&self) -> NodeId {
        NodeId(1)
    }
    fn send(&mut self, _to: NodeId, _msg: NetMsg) {}
    fn set_timer(&mut self, _delay_us: u64, _key: TimerKey) {}
    fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
    fn work(&mut self, _cost_us: u64) {}
    fn record(&mut self, _series: &str, _value: f64) {}
    fn count(&mut self, _counter: &str, _delta: f64) {}
    fn attribute(&mut self, dim: &'static str, entity: u64, weight: u64) {
        self.attributed.push((dim, entity, weight));
    }
}

/// One subscriber's generated shape: liveness ∈ {idle, connected,
/// parked} plus the window counters the sweep should drain.
#[derive(Debug, Clone, Copy)]
struct SubShape {
    liveness: u8,
    bytes: u64,
    nacks: u64,
    ticks: u64,
}

fn shapes() -> impl Strategy<Value = Vec<SubShape>> {
    prop::collection::vec(
        (0u8..3, 0u64..10_000, 0u64..5, 0u64..50).prop_map(|(liveness, bytes, nacks, ticks)| {
            SubShape {
                liveness,
                bytes,
                nacks,
                ticks,
            }
        }),
        1..24,
    )
}

const IDLE: u8 = 0;
const CONNECTED: u8 = 1;
const PARKED: u8 = 2;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sweep_matches_a_naive_slab_recount(shapes in shapes()) {
        let config = BrokerConfig::default();
        let mut shb = Shb::open(&MemFactory::new(), "prop", &config);
        let mut ctx = RecordingCtx::at(1_000_000);

        // Build the population. Slot order is registration order, which
        // pins the attribution order the sweep must reproduce.
        for (i, s) in shapes.iter().enumerate() {
            let sub = SubscriberId(i as u64 + 1);
            shb.register_spec(sub, NodeId(9), Some(&SubscriptionSpec::new("class = 0")), false, false, &mut ctx)
                .expect("register");
            if s.liveness != IDLE {
                shb.connect(sub, NodeId(9), None, None, false, false, &HashMap::new(), None, &config, &mut ctx)
                    .expect("connect");
            }
            if s.liveness == PARKED {
                shb.disconnect(sub, ctx.now_us);
            }
        }
        // Plant the window counters directly — the sweep must not care
        // how they got there.
        for (_, st) in shb.table.iter_mut() {
            let s = shapes[st.sub.0 as usize - 1];
            st.stats.bytes_delivered = s.bytes;
            st.stats.nacks = s.nacks;
            st.stats.catchup_ticks = s.ticks;
        }

        let mut ctx = RecordingCtx::at(5_000_000);
        let summary = shb.sweep_population(&mut ctx);

        // Naive recount of the same generated population.
        let connected = shapes.iter().filter(|s| s.liveness == CONNECTED).count();
        let parked = shapes.iter().filter(|s| s.liveness == PARKED).count();
        prop_assert_eq!(summary.swept, shapes.len());
        prop_assert_eq!(summary.connected, connected);
        prop_assert_eq!(summary.parked, parked);
        prop_assert_eq!(
            summary.catchup_ticks,
            shapes.iter().map(|s| s.ticks).sum::<u64>()
        );

        // Attribution calls: lag for every connected slot (0 — all are
        // caught up), then the non-zero byte/nack deltas, in slot order.
        let mut expect = Vec::new();
        for (i, s) in shapes.iter().enumerate() {
            let sub = i as u64 + 1;
            if s.liveness == CONNECTED {
                expect.push((DIM_SUB_LAG, sub, 0));
            }
            if s.bytes > 0 {
                expect.push((DIM_SUB_BYTES, sub, s.bytes));
            }
            if s.nacks > 0 {
                expect.push((DIM_SUB_NACKS, sub, s.nacks));
            }
        }
        prop_assert_eq!(&ctx.attributed, &expect);

        // The window drained: a second sweep sees the same population
        // but zero deltas.
        let mut ctx2 = RecordingCtx::at(6_000_000);
        let again = shb.sweep_population(&mut ctx2);
        prop_assert_eq!(again.swept, summary.swept);
        prop_assert_eq!(again.connected, summary.connected);
        prop_assert_eq!(again.parked, summary.parked);
        prop_assert_eq!(again.catchup_ticks, 0, "counters must drain on sweep");
        let lag_only: Vec<_> = expect.iter().copied().filter(|&(d, _, _)| d == DIM_SUB_LAG).collect();
        prop_assert_eq!(&ctx2.attributed, &lag_only);
    }
}
