//! Tests for interest-version causality: a new subscription must never
//! be started across ticks that upstream brokers filtered without its
//! filter — including through multi-level trees and around broker
//! restarts.

use gryphon::{Broker, BrokerConfig, PublisherClient, SubscriberClient, SubscriberConfig};
use gryphon_sim::{Handle, Sim};
use gryphon_storage::MemFactory;
use gryphon_types::{PubendId, SubscriberId};

fn attrs_for(seq: u64) -> gryphon_types::Attributes {
    let mut a = gryphon_types::Attributes::new();
    a.insert("class".into(), ((seq as i64) % 4).into());
    a
}

struct Tree {
    sim: Sim,
    shb: Handle<Broker>,
}

/// PHB → intermediate → SHB, one publisher at 200 ev/s.
fn tree(seed: u64) -> Tree {
    let mut sim = Sim::new(seed);
    let phb = sim.add_typed_node(
        "phb",
        Broker::new(0, Box::new(MemFactory::new()), BrokerConfig::default())
            .hosting_pubends([PubendId(0)]),
    );
    let mid = sim.add_typed_node(
        "mid",
        Broker::new(1, Box::new(MemFactory::new()), BrokerConfig::default()),
    );
    let shb = sim.add_typed_node(
        "shb",
        Broker::new(2, Box::new(MemFactory::new()), BrokerConfig::default()).hosting_subscribers(),
    );
    sim.node(phb).add_child(mid.id());
    sim.node(mid).set_parent(phb.id());
    sim.node(mid).add_child(shb.id());
    sim.node(shb).set_parent(mid.id());
    sim.connect(phb.id(), mid.id(), 1_000);
    sim.connect(mid.id(), shb.id(), 1_000);
    let publisher = sim.add_typed_node(
        "pub",
        PublisherClient::new(phb.id(), PubendId(0), 200.0).with_attrs(|seq, _| attrs_for(seq)),
    );
    sim.connect(publisher.id(), phb.id(), 500);
    Tree { sim, shb }
}

/// A subscriber added mid-run through a 2-hop interest chain receives a
/// contiguous run from its (causally safe) start — no partial view of
/// ticks filtered before its filter propagated.
#[test]
fn late_subscription_through_two_hops_is_hole_free() {
    let mut t = tree(31);
    // Let the system run with NO subscriber: everything is downgraded to
    // silence at the PHB already (empty interest).
    t.sim.run_until(5_000_000);
    let sub = t.sim.add_typed_node(
        "late",
        SubscriberClient::new(
            SubscriberId(1),
            t.shb.id(),
            "class = 2",
            SubscriberConfig {
                collect: true,
                ..SubscriberConfig::default()
            },
        ),
    );
    t.sim.connect(sub.id(), t.shb.id(), 500);
    t.sim.run_until(20_000_000);
    let client = t.sim.node_ref(sub);
    assert_eq!(client.order_violations(), 0);
    assert_eq!(client.gaps_received(), 0);
    let seqs: Vec<i64> = client
        .received()
        .iter()
        .filter(|r| r.kind == "event")
        .filter_map(|r| r.seq)
        .collect();
    assert!(seqs.len() > 500, "late subscriber stalled: {}", seqs.len());
    for (i, w) in seqs.windows(2).enumerate() {
        assert_eq!(
            w[1],
            w[0] + 4,
            "hole/dup at {i}: {:?}",
            &seqs[..(i + 2).min(seqs.len())]
        );
    }
    // The connect was parked until the interest chain confirmed.
    assert!(t.sim.metrics().counter("shb.parked_connects") >= 1.0);
}

/// Several subscribers joining in a staggered burst (each bumping the
/// interest version while earlier ones are still parked) all get
/// contiguous streams.
#[test]
fn burst_of_new_subscriptions_all_start_cleanly() {
    let mut t = tree(32);
    t.sim.run_until(3_000_000);
    let mut subs = Vec::new();
    for i in 0..8u64 {
        let sub = t.sim.add_typed_node(
            &format!("s{i}"),
            SubscriberClient::new(
                SubscriberId(i + 1),
                t.shb.id(),
                format!("class = {}", i % 4).as_str(),
                SubscriberConfig {
                    collect: true,
                    connect_at_us: i * 700, // staggered connects, sub-ms apart
                    ..SubscriberConfig::default()
                },
            ),
        );
        t.sim.connect(sub.id(), t.shb.id(), 500);
        subs.push(sub);
    }
    t.sim.run_until(15_000_000);
    for sub in subs {
        let client = t.sim.node_ref(sub);
        assert_eq!(client.order_violations(), 0);
        let seqs: Vec<i64> = client
            .received()
            .iter()
            .filter(|r| r.kind == "event")
            .filter_map(|r| r.seq)
            .collect();
        assert!(seqs.len() > 300, "{:?}: {}", sub.id(), seqs.len());
        assert!(
            seqs.windows(2).all(|w| w[1] == w[0] + 4),
            "{:?} got a hole: {seqs:?}",
            sub.id()
        );
    }
}

/// An intermediate broker restart must not let stale interest filter a
/// newly joined subscription's events (children refresh their interest;
/// unknown children are forwarded unfiltered).
#[test]
fn intermediate_restart_does_not_poison_new_subscriptions() {
    let mut t = tree(33);
    // Warm subscriber so traffic flows end to end.
    let warm = t.sim.add_typed_node(
        "warm",
        SubscriberClient::new(
            SubscriberId(50),
            t.shb.id(),
            "class = 0",
            SubscriberConfig::default(),
        ),
    );
    t.sim.connect(warm.id(), t.shb.id(), 500);
    t.sim.run_until(4_000_000);
    // Crash the intermediate briefly; its interest tables evaporate.
    t.sim
        .schedule_crash(gryphon_types::NodeId(1), 4_000_000, 500_000);
    // A new subscription joins immediately after the restart, while the
    // intermediate's view of the world is still cold.
    let late = t.sim.add_typed_node(
        "late",
        SubscriberClient::new(
            SubscriberId(51),
            t.shb.id(),
            "class = 3",
            SubscriberConfig {
                collect: true,
                connect_at_us: 600_000,
                probe_interval_us: 1_000_000,
                ..SubscriberConfig::default()
            },
        ),
    );
    t.sim.connect(late.id(), t.shb.id(), 500);
    t.sim.run_until(20_000_000);
    let client = t.sim.node_ref(late);
    assert_eq!(client.order_violations(), 0);
    let seqs: Vec<i64> = client
        .received()
        .iter()
        .filter(|r| r.kind == "event")
        .filter_map(|r| r.seq)
        .collect();
    assert!(seqs.len() > 400, "{}", seqs.len());
    assert!(
        seqs.windows(2).all(|w| w[1] == w[0] + 4),
        "hole after intermediate restart"
    );
    // And the warm subscriber survived the restart unharmed too.
    let warm = t.sim.node_ref(warm);
    assert_eq!(warm.order_violations(), 0);
    assert_eq!(warm.gaps_received(), 0);
}
