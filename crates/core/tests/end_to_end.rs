//! End-to-end protocol tests on small topologies.
//!
//! Ground truth: every publisher stamps events with a monotone `_seq`
//! attribute and a deterministic `class = seq % 4`; a subscriber with
//! filter `class = k` must receive exactly the events with `seq ≡ k
//! (mod 4)`, in order, with no duplicates — whatever failures occur.

use gryphon::{Broker, BrokerConfig, PublisherClient, SubscriberClient, SubscriberConfig};
use gryphon_sim::{Handle, Sim};
use gryphon_storage::MemFactory;
use gryphon_types::{PubendId, SubscriberId};

const CLASSES: i64 = 4;

fn attrs_for(seq: u64) -> gryphon_types::Attributes {
    let mut a = gryphon_types::Attributes::new();
    a.insert("class".into(), ((seq as i64) % CLASSES).into());
    a
}

struct World {
    sim: Sim,
    phb: Handle<Broker>,
    shbs: Vec<Handle<Broker>>,
    publisher: Handle<PublisherClient>,
    subs: Vec<Handle<SubscriberClient>>,
}

/// One PHB (1 pubend, `rate` ev/s), `n_shbs` SHBs (children of the PHB),
/// one subscriber per (shb, class) pair with the given config template.
fn build(seed: u64, n_shbs: usize, rate: f64, sub_cfg: &SubscriberConfig) -> World {
    let mut sim = Sim::new(seed);
    let phb = sim.add_typed_node(
        "phb",
        Broker::new(0, Box::new(MemFactory::new()), BrokerConfig::default())
            .hosting_pubends([PubendId(0)]),
    );
    let mut shbs = Vec::new();
    let mut subs = Vec::new();
    for i in 0..n_shbs {
        let shb = sim.add_typed_node(
            &format!("shb{i}"),
            Broker::new(
                1 + i as u32,
                Box::new(MemFactory::new()),
                BrokerConfig::default(),
            )
            .hosting_subscribers(),
        );
        sim.node(phb).add_child(shb.id());
        sim.node(shb).set_parent(phb.id());
        sim.connect(phb.id(), shb.id(), 1_000);
        for class in 0..CLASSES {
            let sub_id = SubscriberId((i as u64) * 100 + class as u64 + 1);
            let mut cfg = sub_cfg.clone();
            cfg.collect = true;
            let sub = sim.add_typed_node(
                &format!("sub{}", sub_id.0),
                SubscriberClient::new(sub_id, shb.id(), format!("class = {class}").as_str(), cfg),
            );
            sim.connect(sub.id(), shb.id(), 500);
            subs.push(sub);
        }
        shbs.push(shb);
    }
    let publisher = sim.add_typed_node(
        "pub",
        PublisherClient::new(phb.id(), PubendId(0), rate).with_attrs(|seq, _| attrs_for(seq)),
    );
    sim.connect(publisher.id(), phb.id(), 500);
    World {
        sim,
        phb,
        shbs,
        publisher,
        subs,
    }
}

/// Asserts a subscriber received exactly the prefix of its expected
/// sequence numbers (a short in-flight tail may be missing), with at
/// least `min_events` delivered.
fn assert_exact_prefix(world: &World, sub: Handle<SubscriberClient>, min_events: u64) {
    let client = world.sim.node_ref(sub);
    assert_eq!(client.order_violations(), 0, "order violated");
    let seqs: Vec<i64> = client
        .received()
        .iter()
        .filter(|r| r.kind == "event")
        .map(|r| r.seq.expect("publisher stamps _seq"))
        .collect();
    assert!(
        seqs.len() as u64 >= min_events,
        "expected ≥{min_events} events, got {}",
        seqs.len()
    );
    let class = seqs.first().map(|s| s % CLASSES).unwrap_or(0);
    for (i, &s) in seqs.iter().enumerate() {
        assert_eq!(
            s,
            class + (i as i64) * CLASSES,
            "subscriber {:?} missed or duplicated an event at position {i}: {seqs:?}",
            sub.id()
        );
    }
}

#[test]
fn steady_state_exactly_once_in_order() {
    let mut world = build(1, 1, 200.0, &SubscriberConfig::default());
    world.sim.run_until(10_000_000); // 10 virtual seconds
    let published = world.sim.node_ref(world.publisher).published();
    assert!(published > 1_900, "publisher should have run: {published}");
    for &sub in &world.subs.clone() {
        // 200 ev/s, 4 classes → ~50 ev/s each over 10 s ⇒ ≥ 400 after
        // commit latency.
        assert_exact_prefix(&world, sub, 400);
        assert_eq!(world.sim.node_ref(sub).gaps_received(), 0);
    }
}

#[test]
fn voluntary_disconnect_catches_up_exactly_once() {
    let cfg = SubscriberConfig {
        disconnect_period_us: Some(6_000_000),
        disconnect_duration_us: 2_000_000,
        ..SubscriberConfig::default()
    };
    let mut world = build(2, 1, 200.0, &cfg);
    world.sim.run_until(30_000_000); // 5 disconnect cycles
    for &sub in &world.subs.clone() {
        assert_exact_prefix(&world, sub, 1_000);
        assert_eq!(
            world.sim.node_ref(sub).gaps_received(),
            0,
            "no early release configured"
        );
    }
    // Catchup actually happened (streams were created and switched over).
    assert!(world.sim.metrics().counter("shb.switchovers") >= 4.0);
    assert!(world.sim.metrics().counter("shb.catchup_delivered") > 0.0);
}

#[test]
fn shb_crash_recovery_preserves_exactly_once() {
    let cfg = SubscriberConfig {
        probe_interval_us: 1_000_000,
        ..SubscriberConfig::default()
    };
    let mut world = build(3, 1, 200.0, &cfg);
    let shb = world.shbs[0];
    world.sim.run_until(5_000_000);
    world.sim.schedule_crash(shb.id(), 5_000_000, 3_000_000);
    world.sim.run_until(40_000_000);
    assert!(world.sim.metrics().counter("broker.restarts") >= 1.0);
    for &sub in &world.subs.clone() {
        assert_exact_prefix(&world, sub, 1_500);
        assert_eq!(world.sim.node_ref(sub).gaps_received(), 0);
    }
}

#[test]
fn phb_crash_recovery_preserves_exactly_once() {
    let mut world = build(4, 1, 200.0, &SubscriberConfig::default());
    let phb = world.phb;
    world.sim.run_until(5_000_000);
    world.sim.schedule_crash(phb.id(), 5_000_000, 2_000_000);
    world.sim.run_until(30_000_000);
    for &sub in &world.subs.clone() {
        let client = world.sim.node_ref(sub);
        assert_eq!(client.order_violations(), 0);
        // Publishes during the PHB outage are lost at the (crashed) PHB
        // before being logged — that is publisher-side loss, outside the
        // durable-subscription guarantee. What must hold: whatever WAS
        // logged is delivered without duplication, in order.
        let seqs: Vec<i64> = client
            .received()
            .iter()
            .filter(|r| r.kind == "event")
            .map(|r| r.seq.unwrap())
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(seqs.len(), sorted.len(), "duplicates after PHB crash");
        assert!(seqs.len() > 1_000, "delivery should resume after restart");
    }
}

#[test]
fn two_level_tree_with_intermediate_filtering() {
    // PHB → intermediate → 2 SHBs; subscribers partitioned by class.
    let mut sim = Sim::new(5);
    let phb = sim.add_typed_node(
        "phb",
        Broker::new(0, Box::new(MemFactory::new()), BrokerConfig::default())
            .hosting_pubends([PubendId(0), PubendId(1)]),
    );
    let mid = sim.add_typed_node(
        "mid",
        Broker::new(1, Box::new(MemFactory::new()), BrokerConfig::default()),
    );
    sim.node(phb).add_child(mid.id());
    sim.node(mid).set_parent(phb.id());
    sim.connect(phb.id(), mid.id(), 1_000);
    let mut subs: Vec<(gryphon_sim::Handle<SubscriberClient>, i64)> = Vec::new();
    let mut shbs = Vec::new();
    for i in 0..2u32 {
        let shb = sim.add_typed_node(
            &format!("shb{i}"),
            Broker::new(2 + i, Box::new(MemFactory::new()), BrokerConfig::default())
                .hosting_subscribers(),
        );
        sim.node(mid).add_child(shb.id());
        sim.node(shb).set_parent(mid.id());
        sim.connect(mid.id(), shb.id(), 1_000);
        // SHB 0 hosts classes 0/1; SHB 1 hosts classes 2/3.
        for c in 0..2 {
            let class = i as i64 * 2 + c;
            let cfg = SubscriberConfig {
                collect: true,
                ..SubscriberConfig::default()
            };
            let sub = sim.add_typed_node(
                &format!("sub{class}"),
                SubscriberClient::new(
                    SubscriberId(class as u64 + 1),
                    shb.id(),
                    format!("class = {class}").as_str(),
                    cfg,
                ),
            );
            sim.connect(sub.id(), shb.id(), 500);
            subs.push((sub, class));
        }
        shbs.push(shb);
    }
    for p in 0..2u32 {
        let publisher = sim.add_typed_node(
            &format!("pub{p}"),
            PublisherClient::new(phb.id(), PubendId(p), 100.0).with_attrs(|seq, _| attrs_for(seq)),
        );
        sim.connect(publisher.id(), phb.id(), 500);
    }
    sim.run_until(10_000_000);
    for (sub, class) in subs {
        let client = sim.node_ref(sub);
        assert_eq!(client.order_violations(), 0);
        assert_eq!(client.gaps_received(), 0);
        // Two publishers at 100 ev/s each, 1/4 match per subscriber over
        // 10 s ⇒ ~500; allow latency slack.
        assert!(
            client.events_received() > 350,
            "sub got {} events",
            client.events_received()
        );
        // All received events match the subscription (intermediate
        // downgrade must not leak wrong-class events).
        for r in client.received() {
            if let Some(seq) = r.seq {
                assert_eq!(seq % CLASSES, class, "leaked wrong-class event");
            }
        }
    }
}

#[test]
fn early_release_produces_gap_for_laggard() {
    // maxRetain = 3 s of ticks; one subscriber stays away for 8 s.
    let mut sim = Sim::new(6);
    let config = BrokerConfig {
        max_retain_ticks: Some(3_000),
        // A bounded cache: the 8 s absence must not be serviceable from
        // the SHB's own cache, or no gap can ever be observed (caches
        // serving early-released data is legal and *better* — the gap
        // only appears when nobody retains the span).
        cache_window_ticks: 1_000,
        ..BrokerConfig::default()
    };
    let phb = sim.add_typed_node(
        "phb",
        Broker::new(0, Box::new(MemFactory::new()), config.clone()).hosting_pubends([PubendId(0)]),
    );
    let shb = sim.add_typed_node(
        "shb",
        Broker::new(1, Box::new(MemFactory::new()), config).hosting_subscribers(),
    );
    sim.node(phb).add_child(shb.id());
    sim.node(shb).set_parent(phb.id());
    sim.connect(phb.id(), shb.id(), 1_000);
    let laggard = sim.add_typed_node(
        "laggard",
        SubscriberClient::new(
            SubscriberId(1),
            shb.id(),
            "class = 0",
            SubscriberConfig {
                collect: true,
                disconnect_period_us: Some(4_000_000),
                disconnect_duration_us: 8_000_000,
                ..SubscriberConfig::default()
            },
        ),
    );
    sim.connect(laggard.id(), shb.id(), 500);
    // A well-behaved subscriber keeps latestDelivered (and thus Td)
    // advancing, so early release is what discards the laggard's span.
    let steady = sim.add_typed_node(
        "steady",
        SubscriberClient::new(
            SubscriberId(2),
            shb.id(),
            "class = 0",
            SubscriberConfig {
                collect: false,
                ..SubscriberConfig::default()
            },
        ),
    );
    sim.connect(steady.id(), shb.id(), 500);
    let publisher = sim.add_typed_node(
        "pub",
        PublisherClient::new(phb.id(), PubendId(0), 200.0).with_attrs(|seq, _| attrs_for(seq)),
    );
    sim.connect(publisher.id(), phb.id(), 500);
    sim.run_until(30_000_000);
    let client = sim.node_ref(laggard);
    assert!(
        client.gaps_received() > 0,
        "8 s absence with 3 s maxRetain must produce a gap"
    );
    assert_eq!(client.order_violations(), 0);
    // Delivery resumes after the gap.
    assert!(client.events_received() > 500);
    // The well-behaved subscriber never sees a gap (constream invariant).
    assert_eq!(sim.node_ref(steady).gaps_received(), 0);
    assert_eq!(sim.node_ref(steady).order_violations(), 0);
}

#[test]
fn single_broker_topology_hosts_everything() {
    // The paper's 1-broker configuration: pubends + subscribers on one
    // node.
    let mut sim = Sim::new(7);
    let broker = sim.add_typed_node(
        "b",
        Broker::new(0, Box::new(MemFactory::new()), BrokerConfig::default())
            .hosting_pubends([PubendId(0)])
            .hosting_subscribers(),
    );
    let sub = sim.add_typed_node(
        "sub",
        SubscriberClient::new(
            SubscriberId(1),
            broker.id(),
            "class = 1",
            SubscriberConfig {
                collect: true,
                disconnect_period_us: Some(5_000_000),
                disconnect_duration_us: 1_000_000,
                ..SubscriberConfig::default()
            },
        ),
    );
    sim.connect(sub.id(), broker.id(), 500);
    let publisher = sim.add_typed_node(
        "pub",
        PublisherClient::new(broker.id(), PubendId(0), 200.0).with_attrs(|seq, _| attrs_for(seq)),
    );
    sim.connect(publisher.id(), broker.id(), 500);
    sim.run_until(20_000_000);
    let client = sim.node_ref(sub);
    assert_eq!(client.order_violations(), 0);
    assert_eq!(client.gaps_received(), 0);
    let seqs: Vec<i64> = client
        .received()
        .iter()
        .filter(|r| r.kind == "event")
        .filter_map(|r| r.seq)
        .collect();
    assert!(seqs.len() > 800, "got {}", seqs.len());
    for (i, &s) in seqs.iter().enumerate() {
        assert_eq!(s, 1 + (i as i64) * CLASSES, "hole/dup at {i}");
    }
}

#[test]
fn stale_checkpoint_reconnect_yields_gaps_not_duplicates() {
    // A subscriber that reconnects with an older checkpoint after early
    // release must see gap messages, never re-delivered data it acked...
    // unless the data is still retained, in which case redelivery is the
    // correct model behaviour (the paper: "may get gap messages in lieu
    // of events it has already acknowledged").
    let mut sim = Sim::new(8);
    let config = BrokerConfig {
        max_retain_ticks: Some(2_000),
        ..BrokerConfig::default()
    };
    let b = sim.add_typed_node(
        "b",
        Broker::new(0, Box::new(MemFactory::new()), config)
            .hosting_pubends([PubendId(0)])
            .hosting_subscribers(),
    );
    let sub = sim.add_typed_node(
        "sub",
        SubscriberClient::new(
            SubscriberId(1),
            b.id(),
            "class = 0",
            SubscriberConfig {
                collect: true,
                disconnect_period_us: Some(5_000_000),
                disconnect_duration_us: 6_000_000, // beyond maxRetain
                ..SubscriberConfig::default()
            },
        ),
    );
    sim.connect(sub.id(), b.id(), 500);
    let steady = sim.add_typed_node(
        "steady",
        SubscriberClient::new(
            SubscriberId(2),
            b.id(),
            "class = 0",
            SubscriberConfig::default(),
        ),
    );
    sim.connect(steady.id(), b.id(), 500);
    let publisher = sim.add_typed_node(
        "pub",
        PublisherClient::new(b.id(), PubendId(0), 400.0).with_attrs(|seq, _| attrs_for(seq)),
    );
    sim.connect(publisher.id(), b.id(), 500);
    sim.run_until(30_000_000);
    let client = sim.node_ref(sub);
    assert!(client.gaps_received() > 0);
    assert_eq!(client.order_violations(), 0, "no duplicates/disorder");
}

#[test]
fn reconnect_anywhere_recovers_missed_interval_via_refiltering() {
    // A durable subscriber consumes at SHB-A, disconnects, and presents
    // its checkpoint at SHB-B (which has never seen it). B must recover
    // the missed interval from the pubend authoritatively and refilter —
    // exactly-once, in order, no gaps (paper §1, novel feature 5).
    let mut sim = Sim::new(9);
    let phb = sim.add_typed_node(
        "phb",
        Broker::new(0, Box::new(MemFactory::new()), BrokerConfig::default())
            .hosting_pubends([PubendId(0)]),
    );
    let mut shbs = Vec::new();
    for i in 0..2u32 {
        let shb = sim.add_typed_node(
            &format!("shb{i}"),
            Broker::new(1 + i, Box::new(MemFactory::new()), BrokerConfig::default())
                .hosting_subscribers(),
        );
        sim.node(phb).add_child(shb.id());
        sim.node(shb).set_parent(phb.id());
        sim.connect(phb.id(), shb.id(), 1_000);
        shbs.push(shb);
    }
    let publisher = sim.add_typed_node(
        "pub",
        PublisherClient::new(phb.id(), PubendId(0), 200.0).with_attrs(|seq, _| attrs_for(seq)),
    );
    sim.connect(publisher.id(), phb.id(), 500);

    // Phase 1: consume at SHB-A for 5 s, then leave for good (the
    // machine migrates; it must not probe-reconnect to A).
    let first = sim.add_typed_node(
        "session-a",
        SubscriberClient::new(
            SubscriberId(77),
            shbs[0].id(),
            "class = 1",
            SubscriberConfig {
                collect: true,
                disconnect_period_us: Some(5_000_000),
                disconnect_duration_us: 600_000_000, // never comes back
                probe_interval_us: 600_000_000,
                ..SubscriberConfig::default()
            },
        ),
    );
    sim.connect(first.id(), shbs[0].id(), 500);
    sim.run_until(5_100_000);
    let ct = sim.node_ref(first).checkpoint().clone();
    let last_seq_a = sim
        .node_ref(first)
        .received()
        .iter()
        .rev()
        .filter(|r| r.kind == "event")
        .find_map(|r| r.seq)
        .expect("phase 1 delivered");

    // Phase 2: 5 s later, present the checkpoint at SHB-B.
    sim.run_until(10_000_000);
    let second = sim.add_typed_node(
        "session-b",
        SubscriberClient::new(
            SubscriberId(77),
            shbs[1].id(),
            "class = 1",
            SubscriberConfig {
                collect: true,
                ..SubscriberConfig::default()
            },
        )
        .with_checkpoint(ct),
    );
    sim.connect(second.id(), shbs[1].id(), 500);
    sim.run_until(25_000_000);

    let client = sim.node_ref(second);
    assert_eq!(client.order_violations(), 0);
    assert_eq!(client.gaps_received(), 0, "nothing was early-released");
    let seqs: Vec<i64> = client
        .received()
        .iter()
        .filter(|r| r.kind == "event")
        .filter_map(|r| r.seq)
        .collect();
    // Seamless continuation: the first event at B is the very next
    // class-1 event after the last one consumed at A, and the sequence
    // is hole-free from there.
    assert_eq!(
        seqs.first().copied(),
        Some(last_seq_a + 4),
        "missed interval lost"
    );
    for (i, &s) in seqs.iter().enumerate() {
        assert_eq!(s, last_seq_a + 4 + (i as i64) * 4, "hole/dup at {i}");
    }
    assert!(seqs.len() > 800, "resumed stream too short: {}", seqs.len());
    // The recovery really was authoritative refiltering, not B's PFS.
    assert!(sim.metrics().counter("shb.catchup_delivered") > 0.0);
}
