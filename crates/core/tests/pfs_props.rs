//! Property tests for the Persistent Filtering Subsystem: batch reads by
//! backpointer walk must agree exactly with a reference replay of the
//! write history, for any write pattern, read window, buffer size, chop
//! schedule and crash point.

use gryphon::{Pfs, PfsMode};
use gryphon_storage::MemFactory;
use gryphon_types::{PubendId, SubscriberId, Timestamp};
use proptest::prelude::*;
use std::collections::BTreeMap;

const P: PubendId = PubendId(0);
const SUBS: u64 = 6;

#[derive(Debug, Clone)]
struct WritePlan {
    /// Gap in ticks before this write.
    gap: u64,
    /// Bitmask of matching subscribers (never empty — masked later).
    mask: u8,
}

fn arb_history() -> impl Strategy<Value = Vec<WritePlan>> {
    prop::collection::vec(
        (1u64..6, 1u8..(1 << SUBS) as u8).prop_map(|(gap, mask)| WritePlan { gap, mask }),
        1..80,
    )
}

/// Reference model: ts → set of matching subs.
fn build(history: &[WritePlan]) -> (Pfs, MemFactory, BTreeMap<u64, u8>, Timestamp) {
    let factory = MemFactory::new();
    let mut pfs = Pfs::open(Box::new(factory.clone()), "t", PfsMode::Precise).unwrap();
    let mut model = BTreeMap::new();
    let mut ts = 0u64;
    for w in history {
        ts += w.gap;
        let subs: Vec<SubscriberId> = (0..SUBS)
            .filter(|s| w.mask & (1 << s) != 0)
            .map(SubscriberId)
            .collect();
        pfs.write(P, Timestamp(ts), &subs).unwrap();
        model.insert(ts, w.mask);
    }
    pfs.sync().unwrap();
    (pfs, factory, model, Timestamp(ts))
}

fn reference_q_ticks(model: &BTreeMap<u64, u8>, sub: u64, from: u64, to: u64) -> Vec<u64> {
    model
        .range(from + 1..=to)
        .filter(|(_, &mask)| mask & (1 << sub) != 0)
        .map(|(&t, _)| t)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Unbounded reads equal the reference replay for every subscriber
    /// and window.
    #[test]
    fn batch_read_equals_reference(
        history in arb_history(),
        sub in 0u64..SUBS,
        from_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let (mut pfs, _f, model, last) = build(&history);
        let from = (last.0 as f64 * from_frac) as u64;
        let to = from + ((last.0 - from.min(last.0)) as f64 * len_frac) as u64 + 1;
        let r = pfs.read(P, SubscriberId(sub), Timestamp(from), Timestamp(to), usize::MAX).unwrap();
        prop_assert_eq!(r.known_from, Timestamp(from), "intact chain");
        prop_assert_eq!(r.covered_to, Timestamp(to));
        prop_assert!(r.full_read);
        let got: Vec<u64> = r.q_ticks.iter().map(|t| t.0).collect();
        prop_assert_eq!(got, reference_q_ticks(&model, sub, from, to));
    }

    /// Saturated reads return the *oldest* `max_q` ticks and chain
    /// correctly into follow-up reads until the window is covered.
    #[test]
    fn saturated_reads_chain_to_completion(
        history in arb_history(),
        sub in 0u64..SUBS,
        max_q in 1usize..5,
    ) {
        let (mut pfs, _f, model, last) = build(&history);
        let expected = reference_q_ticks(&model, sub, 0, last.0);
        let mut collected = Vec::new();
        let mut from = Timestamp::ZERO;
        for _ in 0..200 {
            let r = pfs.read(P, SubscriberId(sub), from, last, max_q).unwrap();
            prop_assert!(r.q_ticks.len() <= max_q);
            collected.extend(r.q_ticks.iter().map(|t| t.0));
            if r.full_read {
                prop_assert_eq!(r.covered_to, last);
                break;
            }
            from = r.covered_to;
        }
        prop_assert_eq!(collected, expected);
    }

    /// Recovery (scan rebuild) preserves read results exactly.
    #[test]
    fn recovery_preserves_reads(
        history in arb_history(),
        sub in 0u64..SUBS,
    ) {
        let (pfs, factory, model, last) = build(&history);
        drop(pfs);
        let mut pfs = Pfs::open(Box::new(factory), "t", PfsMode::Precise).unwrap();
        let r = pfs.read(P, SubscriberId(sub), Timestamp::ZERO, last, usize::MAX).unwrap();
        let got: Vec<u64> = r.q_ticks.iter().map(|t| t.0).collect();
        prop_assert_eq!(got, reference_q_ticks(&model, sub, 0, last.0));
    }

    /// Chopping below a released point never affects reads above it, and
    /// reads reaching below report the undetermined region (never a
    /// silent wrong answer).
    #[test]
    fn chop_is_conservative(
        history in arb_history(),
        sub in 0u64..SUBS,
        chop_frac in 0.0f64..1.0,
    ) {
        let (mut pfs, _f, model, last) = build(&history);
        let chop_at = 1 + (last.0 as f64 * chop_frac) as u64;
        pfs.chop_below(P, Timestamp(chop_at)).unwrap();
        // Read entirely above the chop: exact.
        let r = pfs.read(P, SubscriberId(sub), Timestamp(chop_at - 1), last, usize::MAX).unwrap();
        let got: Vec<u64> = r.q_ticks.iter().map(|t| t.0).collect();
        prop_assert_eq!(&got, &reference_q_ticks(&model, sub, chop_at - 1, last.0));
        // Read from zero: the undetermined prefix must be reported.
        let r = pfs.read(P, SubscriberId(sub), Timestamp::ZERO, last, usize::MAX).unwrap();
        prop_assert!(r.known_from.0 >= chop_at.saturating_sub(1));
        // Above known_from, the result is still exact.
        let got: Vec<u64> = r.q_ticks.iter().map(|t| t.0).collect();
        prop_assert_eq!(got, reference_q_ticks(&model, sub, r.known_from.0, last.0));
    }

    /// The imprecise mode only ever widens the Q set (never drops a true
    /// match) — the correctness condition of paper §4.2.
    #[test]
    fn imprecise_is_superset(
        history in arb_history(),
        sub in 0u64..SUBS,
        window in 2u64..32,
    ) {
        let factory = MemFactory::new();
        let mut pfs = Pfs::open(
            Box::new(factory),
            "t",
            PfsMode::Imprecise { window_ticks: window },
        ).unwrap();
        let mut model = BTreeMap::new();
        let mut ts = 0u64;
        for w in &history {
            ts += w.gap;
            let subs: Vec<SubscriberId> = (0..SUBS)
                .filter(|s| w.mask & (1 << s) != 0)
                .map(SubscriberId)
                .collect();
            pfs.write(P, Timestamp(ts), &subs).unwrap();
            model.insert(ts, w.mask);
        }
        pfs.sync().unwrap();
        let r = pfs.read(P, SubscriberId(sub), Timestamp::ZERO, Timestamp(ts), usize::MAX).unwrap();
        let got: std::collections::BTreeSet<u64> = r.q_ticks.iter().map(|t| t.0).collect();
        for t in reference_q_ticks(&model, sub, 0, ts) {
            prop_assert!(got.contains(&t), "imprecise mode dropped true match at {t}");
        }
    }
}
