//! Offline stand-in for `crossbeam`.
//!
//! Implements the one piece this workspace uses: `channel::bounded` MPMC
//! channels with `send` / `try_send` / `recv_timeout`, on top of a
//! `Mutex<VecDeque>` + two `Condvar`s. Slower than real crossbeam under
//! heavy contention, but semantically equivalent — `Sender` and
//! `Receiver` are both `Clone + Send + Sync`, and disconnection is
//! reported once every peer on the other side is dropped.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct State<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signalled when the queue gains an item or all senders leave.
        not_empty: Condvar,
        /// Signalled when the queue loses an item or all receivers leave.
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`]: the message could not be
    /// delivered because every receiver was dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// Every receiver was dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender was dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`]: channel empty and every
    /// sender dropped.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded channel holding at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
        match shared.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message if every receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = lock(&self.shared);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                if st.queue.len() < st.cap {
                    st.queue.push_back(msg);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = match self.shared.not_full.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Sends `msg` without blocking.
        ///
        /// # Errors
        ///
        /// Returns the message if the channel is full or disconnected.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = lock(&self.shared);
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if st.queue.len() >= st.cap {
                return Err(TrySendError::Full(msg));
            }
            st.queue.push_back(msg);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued (a momentary occupancy snapshot —
        /// telemetry probes sample this as channel queue depth).
        pub fn len(&self) -> usize {
            lock(&self.shared).queue.len()
        }

        /// `true` when no messages are queued right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Messages currently queued (a momentary occupancy snapshot —
        /// telemetry probes sample this as channel queue depth).
        pub fn len(&self) -> usize {
            lock(&self.shared).queue.len()
        }

        /// `true` when no messages are queued right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Receives a message, blocking until one arrives.
        ///
        /// # Errors
        ///
        /// Returns an error once the channel is empty and senderless.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = lock(&self.shared);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = match self.shared.not_empty.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Receives a message, waiting at most `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] if the wait elapsed, or
        /// [`RecvTimeoutError::Disconnected`] once empty and senderless.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = lock(&self.shared);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, res) = match self.shared.not_empty.wait_timeout(st, deadline - now) {
                    Ok((g, res)) => (g, res),
                    Err(p) => {
                        let (g, res) = p.into_inner();
                        (g, res)
                    }
                };
                st = g;
                if res.timed_out() && st.queue.is_empty() {
                    return if st.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.shared);
            st.senders -= 1;
            if st.senders == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.shared);
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = bounded(4);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn len_tracks_occupancy() {
            let (tx, rx) = bounded(4);
            assert_eq!(tx.len(), 0);
            assert!(rx.is_empty());
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(tx.len(), 2);
            assert_eq!(rx.len(), 2);
            rx.recv().unwrap();
            assert_eq!(rx.len(), 1);
            assert!(!tx.is_empty());
        }

        #[test]
        fn try_send_full_and_disconnected() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            drop(rx);
            let _ = tx.try_send(3); // queue full, but receiver gone wins? full checked after
            let (tx2, rx2) = bounded(8);
            drop(rx2);
            assert!(matches!(
                tx2.try_send(9),
                Err(TrySendError::Disconnected(9))
            ));
        }

        #[test]
        fn recv_timeout_reports_timeout_then_disconnect() {
            let (tx, rx) = bounded::<u32>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_round_trip() {
            let (tx, rx) = bounded(2);
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv_timeout(Duration::from_secs(5)) {
                got.push(v);
                if got.len() == 100 {
                    break;
                }
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
