//! Structured trace events, the bounded trace ring buffer, and the
//! runtime invariant watchdogs that consume the trace stream.
//!
//! ## Why traces and not just counters
//!
//! The paper's evaluation is about *internal* broker behavior: when the
//! pubend timestamps and logs, when an SHB switches a subscriber from its
//! catchup stream to the consolidated stream, how large PFS backpointer
//! reads are. Counters aggregate those facts away; the trace stream keeps
//! the individual transitions (bounded by a ring buffer) so tests and the
//! `xp --trace` flag can inspect them, and so the watchdogs can check the
//! paper's safety invariants *continuously during simulation* instead of
//! only at end-of-run.
//!
//! ## Cost model
//!
//! Tracing is compiled out when the `trace` feature of `gryphon-sim` is
//! disabled: the [`trace_event!`](crate::trace_event) macro's expansion
//! becomes dead code (events are never constructed) and [`Sim`] carries
//! no buffer. With the feature enabled, a push is an enum move into a
//! `VecDeque` plus an O(1) watchdog lookup.
//!
//! ## Watchdogs
//!
//! Three invariants from the paper are checked online:
//!
//! * **gap-free constream** (§4.1): successive constream advances for one
//!   `(node, pubend)` must be contiguous — each advance starts exactly
//!   where the previous one ended;
//! * **monotone doubt horizon** (§3): the doubt horizon never regresses;
//! * **only-once logging** (§2): the PHB logs each timestamp at most once,
//!   in ascending order.
//!
//! The first two reset when a node restarts (recovery legitimately
//! re-derives delivery state from the persistent `latestDelivered`); the
//! logging invariant deliberately survives restarts, because
//! `restart_at` must re-timestamp above everything previously logged.
//! Violations bump `watchdog.*` counters and, when
//! [`Watchdogs::panic_on_violation`] is set (the default under
//! `cfg(debug_assertions)`), panic with a description.

use crate::Metrics;
use gryphon_types::{NodeId, PubendId, SubscriberId, Timestamp};

/// Emits a [`TraceEvent`] through a [`NodeCtx`](crate::NodeCtx).
///
/// With the `trace` feature of `gryphon-sim` disabled this expands to
/// dead code: the event expression is still type-checked but never
/// constructed, so instrumented hot paths carry zero runtime cost.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! trace_event {
    ($ctx:expr, $ev:expr) => {
        $ctx.trace($ev)
    };
}

/// Disabled-variant of [`trace_event!`]: type-checks, compiles to nothing.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! trace_event {
    ($ctx:expr, $ev:expr) => {
        if false {
            $ctx.trace($ev);
        }
    };
}

/// Records a histogram sample through a [`NodeCtx`](crate::NodeCtx);
/// compiled out alongside tracing when the `trace` feature is disabled
/// so instrumentation adds no cost to benchmark builds.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! observe_metric {
    ($ctx:expr, $name:expr, $v:expr) => {
        $ctx.observe($name, $v)
    };
}

/// Disabled-variant of [`observe_metric!`]: type-checks, compiles to
/// nothing.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! observe_metric {
    ($ctx:expr, $name:expr, $v:expr) => {
        if false {
            $ctx.observe($name, $v);
        }
    };
}

/// Appends a time-series sample through a [`NodeCtx`](crate::NodeCtx);
/// compiled out with the `trace` feature like [`observe_metric!`].
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! record_metric {
    ($ctx:expr, $name:expr, $v:expr) => {
        $ctx.record($name, $v)
    };
}

/// Disabled-variant of [`record_metric!`]: type-checks, compiles to
/// nothing.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! record_metric {
    ($ctx:expr, $name:expr, $v:expr) => {
        if false {
            $ctx.record($name, $v);
        }
    };
}

/// Bumps a counter through a [`NodeCtx`](crate::NodeCtx); compiled out
/// with the `trace` feature like [`observe_metric!`].
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! count_metric {
    ($ctx:expr, $name:expr, $v:expr) => {
        $ctx.count($name, $v)
    };
}

/// Disabled-variant of [`count_metric!`]: type-checks, compiles to
/// nothing.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! count_metric {
    ($ctx:expr, $name:expr, $v:expr) => {
        if false {
            $ctx.count($name, $v);
        }
    };
}

/// Sets a telemetry gauge through a [`NodeCtx`](crate::NodeCtx);
/// compiled out with the `trace` feature like [`observe_metric!`].
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! gauge_metric {
    ($ctx:expr, $name:expr, $v:expr) => {
        $ctx.gauge($name, $v)
    };
}

/// Disabled-variant of [`gauge_metric!`]: type-checks, compiles to
/// nothing.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! gauge_metric {
    ($ctx:expr, $name:expr, $v:expr) => {
        if false {
            $ctx.gauge($name, $v);
        }
    };
}

/// Which SHB delivery path carried an event to a subscriber (§4.1):
/// the shared consolidated stream, or the subscriber's private catchup
/// stream while it closes its doubt interval after a reconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryPath {
    /// Delivered from the consolidated stream.
    Constream,
    /// Delivered from a per-subscriber catchup stream.
    Catchup,
}

/// Importance of a trace event, for filtering dumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// High-frequency bookkeeping (constream advances, PFS reads).
    Debug,
    /// Lifecycle transitions worth seeing in a normal dump.
    Info,
    /// Disruptions: crash recovery, conversions to L.
    Warn,
}

/// One structured, typed trace event. Variants mirror the paper's
/// protocol transitions; all are attributed to the emitting node by the
/// surrounding [`TraceRecord`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The pubend assigned timestamp `ts` to a published event (§2).
    PubendTimestamped {
        /// Publishing endpoint.
        pubend: PubendId,
        /// Assigned tick.
        ts: Timestamp,
    },
    /// The PHB durably logged the event at `ts` (`bytes` on the wire) —
    /// the only-once logging point (§2).
    EventLogged {
        /// Publishing endpoint.
        pubend: PubendId,
        /// Logged tick.
        ts: Timestamp,
        /// Encoded size appended to the event log.
        bytes: usize,
    },
    /// Knowledge at or below `upto` was converted to `L` (lost) by the
    /// release protocol chopping the log (§3.4).
    LConverted {
        /// Publishing endpoint.
        pubend: PubendId,
        /// Highest tick now lost.
        upto: Timestamp,
    },
    /// An SHB began a per-subscriber catchup stream (§4.1).
    CatchupStarted {
        /// Publishing endpoint.
        pubend: PubendId,
        /// Reconnecting subscriber.
        sub: SubscriberId,
        /// First tick the subscriber still doubts.
        from: Timestamp,
    },
    /// A catchup stream caught up and the subscriber switched to the
    /// consolidated stream (§4.1); `latency_us` is time since
    /// [`TraceEvent::CatchupStarted`].
    Switchover {
        /// Publishing endpoint.
        pubend: PubendId,
        /// Subscriber switching over.
        sub: SubscriberId,
        /// Catchup duration in virtual µs.
        latency_us: u64,
    },
    /// The consolidated stream advanced from `prev` (exclusive) to
    /// `new_to` (inclusive); the gap-free watchdog checks contiguity.
    ConstreamGapCheck {
        /// Publishing endpoint.
        pubend: PubendId,
        /// Previous processed-to tick.
        prev: Timestamp,
        /// New processed-to tick.
        new_to: Timestamp,
    },
    /// The doubt horizon for `pubend` advanced to `horizon`; the
    /// monotonicity watchdog checks it never regresses (§3).
    DoubtAdvanced {
        /// Publishing endpoint.
        pubend: PubendId,
        /// New doubt horizon.
        horizon: Timestamp,
    },
    /// A PFS backpointer batch read completed (§4.2).
    PfsBatchRead {
        /// Publishing endpoint.
        pubend: PubendId,
        /// Subscriber whose chain was walked.
        sub: SubscriberId,
        /// Records visited by the walk.
        records: usize,
        /// Matched (`Q`) ticks returned.
        q_ticks: usize,
        /// Whether the read drained every available tick.
        full: bool,
    },
    /// A curiosity/nack for `(from, to]` was consolidated upstream;
    /// `fan_in` is how many distinct downstream wants merged into it (§4.3).
    NackConsolidated {
        /// Publishing endpoint.
        pubend: PubendId,
        /// Exclusive lower bound of the nacked range.
        from: Timestamp,
        /// Inclusive upper bound of the nacked range.
        to: Timestamp,
        /// Downstream requests merged into this upstream nack.
        fan_in: usize,
    },
    /// The release protocol advanced `released(p)`, allowing log chops.
    ReleaseAdvanced {
        /// Publishing endpoint.
        pubend: PubendId,
        /// New released tick.
        released: Timestamp,
    },
    /// An IB sent the event at `ts` downstream (lineage stage:
    /// PHB→IB forward). Emitted per child at the actual send, so
    /// re-forwards on the nack path re-emit; the lineage assembler keeps
    /// the first occurrence per span.
    IbForwarded {
        /// Publishing endpoint.
        pubend: PubendId,
        /// Forwarded tick.
        ts: Timestamp,
    },
    /// An SHB absorbed the event at `ts` into its streams (lineage
    /// stage: IB→SHB ingest). Keyed per SHB node by the surrounding
    /// [`TraceRecord`]; recovery-path re-ingests re-emit and the
    /// assembler keeps the first occurrence per (node, span).
    ShbIngested {
        /// Publishing endpoint.
        pubend: PubendId,
        /// Ingested tick.
        ts: Timestamp,
    },
    /// An SHB handed the event at `ts` to subscriber `sub` (lineage
    /// stage: final delivery). For JMS-gated subscribers this is the
    /// queue-accept point — the broker-side exactly-once commitment —
    /// not the later outbox drain.
    Delivered {
        /// Publishing endpoint.
        pubend: PubendId,
        /// Delivered tick.
        ts: Timestamp,
        /// Receiving subscriber.
        sub: SubscriberId,
        /// Which SHB stream carried it.
        path: DeliveryPath,
    },
    /// An SHB told subscriber `sub` that ticks up to `upto` are lost
    /// (released before the subscriber resumed); the ledger checks the
    /// range never exceeds the release/L-conversion boundary.
    GapDelivered {
        /// Publishing endpoint.
        pubend: PubendId,
        /// Receiving subscriber.
        sub: SubscriberId,
        /// Highest tick covered by the gap.
        upto: Timestamp,
    },
    /// A subscriber (re)connected and its per-pubend delivery cursor was
    /// positioned at `at`: deliveries at or below `at` would be
    /// duplicates across the reconnect. Starts a ledger session.
    SubResumed {
        /// Reconnecting subscriber.
        sub: SubscriberId,
        /// Publishing endpoint.
        pubend: PubendId,
        /// Resume checkpoint (exclusive floor for new deliveries).
        at: Timestamp,
    },
    /// The runtime restarted this node after a crash; watchdog delivery
    /// state for the node resets.
    NodeRestarted,
    /// A node received a message kind it has no handler for (e.g. a
    /// server-bound message delivered to a broker); `tag` is the
    /// message's wire tag.
    UnexpectedMsg {
        /// Wire tag of the dropped message (see `NetMsg::tag`).
        tag: &'static str,
    },
    /// The online health engine transitioned a rule (DESIGN.md §14).
    /// Attributed to the control pseudo-node; clean runs emit none of
    /// these, so arming the engine never perturbs a healthy golden run.
    HealthAlert {
        /// Rule name (counter `health.alert.<rule>`).
        rule: String,
        /// The timeline series the rule watches.
        series: String,
        /// `true` on firing, `false` on clearing.
        firing: bool,
    },
}

impl TraceEvent {
    /// The lineage span key `(pubend, timestamp)` this event is a stage
    /// of, for events that concern exactly one persistent event.
    pub fn lineage_key(&self) -> Option<gryphon_types::LineageKey> {
        match *self {
            TraceEvent::PubendTimestamped { pubend, ts }
            | TraceEvent::EventLogged { pubend, ts, .. }
            | TraceEvent::IbForwarded { pubend, ts }
            | TraceEvent::ShbIngested { pubend, ts }
            | TraceEvent::Delivered { pubend, ts, .. } => {
                Some(gryphon_types::LineageKey::new(pubend, ts))
            }
            TraceEvent::GapDelivered { pubend, upto, .. } => {
                Some(gryphon_types::LineageKey::new(pubend, upto))
            }
            _ => None,
        }
    }

    /// The event's severity class.
    pub fn severity(&self) -> Severity {
        match self {
            TraceEvent::PubendTimestamped { .. }
            | TraceEvent::ConstreamGapCheck { .. }
            | TraceEvent::DoubtAdvanced { .. }
            | TraceEvent::PfsBatchRead { .. }
            | TraceEvent::IbForwarded { .. }
            | TraceEvent::ShbIngested { .. }
            | TraceEvent::Delivered { .. }
            | TraceEvent::EventLogged { .. } => Severity::Debug,
            TraceEvent::CatchupStarted { .. }
            | TraceEvent::Switchover { .. }
            | TraceEvent::NackConsolidated { .. }
            | TraceEvent::SubResumed { .. }
            | TraceEvent::ReleaseAdvanced { .. } => Severity::Info,
            TraceEvent::LConverted { .. }
            | TraceEvent::GapDelivered { .. }
            | TraceEvent::NodeRestarted
            | TraceEvent::UnexpectedMsg { .. } => Severity::Warn,
            TraceEvent::HealthAlert { firing, .. } => {
                if *firing {
                    Severity::Warn
                } else {
                    Severity::Info
                }
            }
        }
    }
}

/// A trace event plus its coordinates: when and at which node.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Virtual time of emission (µs).
    pub t_us: u64,
    /// Node the event is attributed to.
    pub node: NodeId,
    /// The event.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// One-line human-readable rendering (used by `xp --trace`).
    pub fn render(&self, node_name: &str) -> String {
        format!("{:>12} µs  {:<8} {:?}", self.t_us, node_name, self.event)
    }
}

/// Bounded ring buffer of [`TraceRecord`]s.
///
/// When full, the oldest record is dropped and counted; experiments that
/// only need the tail (the usual case for post-mortem inspection) keep a
/// small capacity, and tests that need everything raise it.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    records: std::collections::VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

/// Default ring capacity (records).
pub const DEFAULT_TRACE_CAPACITY: usize = 16_384;

impl TraceBuffer {
    /// An empty buffer with [`DEFAULT_TRACE_CAPACITY`].
    pub fn new() -> Self {
        TraceBuffer {
            records: std::collections::VecDeque::new(),
            capacity: DEFAULT_TRACE_CAPACITY,
            dropped: 0,
        }
    }

    /// Changes capacity; `0` disables retention entirely (watchdogs still
    /// see every event — they observe on push, before the ring).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.records.len() > capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, rec: TraceRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() >= self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
    }

    /// Retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted (or rejected at zero capacity) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Online invariant checkers fed from the trace stream.
///
/// See the [module docs](self) for the three invariants. State is keyed
/// per `(node, pubend)` so multi-broker topologies are checked
/// independently per broker.
#[derive(Debug)]
pub struct Watchdogs {
    /// Last constream `new_to` per (node, pubend).
    constream: std::collections::HashMap<(NodeId, PubendId), Timestamp>,
    /// Last doubt horizon per (node, pubend).
    doubt: std::collections::HashMap<(NodeId, PubendId), Timestamp>,
    /// Highest logged tick per (node, pubend); never reset.
    logged: std::collections::HashMap<(NodeId, PubendId), Timestamp>,
    /// Panic on violation (defaults to `cfg!(debug_assertions)`);
    /// corruption tests disable this to count violations instead.
    pub panic_on_violation: bool,
    /// Defer an armed panic to [`Watchdogs::take_deferred_panic`]
    /// instead of unwinding inside [`Watchdogs::observe`]. The simulator
    /// sets this so its flight recorder can dump a post-mortem *before*
    /// the panic fires; the threaded runtime leaves it off (panic at the
    /// point of detection).
    pub defer_panic: bool,
    violations: u64,
    constream_gaps: u64,
    doubt_regressions: u64,
    double_logs: u64,
    deferred_panic: Option<String>,
    last_detail: Option<String>,
}

pub use crate::metrics::names::{
    WATCHDOG_CONSTREAM_GAP, WATCHDOG_DOUBT_REGRESSION, WATCHDOG_DUPLICATE_LOG,
};

impl Default for Watchdogs {
    fn default() -> Self {
        Watchdogs {
            constream: std::collections::HashMap::new(),
            doubt: std::collections::HashMap::new(),
            logged: std::collections::HashMap::new(),
            panic_on_violation: cfg!(debug_assertions),
            defer_panic: false,
            violations: 0,
            constream_gaps: 0,
            doubt_regressions: 0,
            double_logs: 0,
            deferred_panic: None,
            last_detail: None,
        }
    }
}

impl Watchdogs {
    /// Total violations observed across all three invariants (the
    /// backward-compatible aggregate; per-kind counts below).
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Gap-free-constream violations.
    pub fn constream_gaps(&self) -> u64 {
        self.constream_gaps
    }

    /// Monotone-doubt-horizon violations.
    pub fn doubt_regressions(&self) -> u64 {
        self.doubt_regressions
    }

    /// Only-once-logging violations.
    pub fn double_logs(&self) -> u64 {
        self.double_logs
    }

    /// Human-readable description of the most recent violation.
    pub fn last_detail(&self) -> Option<&str> {
        self.last_detail.as_deref()
    }

    /// Takes the pending armed-panic message, if [`Watchdogs::defer_panic`]
    /// held one back during [`Watchdogs::observe`]. The caller is
    /// expected to panic with it after its own post-mortem handling.
    pub fn take_deferred_panic(&mut self) -> Option<String> {
        self.deferred_panic.take()
    }

    fn violate(&mut self, metrics: &mut Metrics, counter: &str, detail: String) {
        self.violations += 1;
        match counter {
            WATCHDOG_CONSTREAM_GAP => self.constream_gaps += 1,
            WATCHDOG_DOUBT_REGRESSION => self.doubt_regressions += 1,
            WATCHDOG_DUPLICATE_LOG => self.double_logs += 1,
            _ => {}
        }
        metrics.count(counter, 1.0);
        if self.panic_on_violation {
            if self.defer_panic {
                self.deferred_panic.get_or_insert_with(|| detail.clone());
            } else {
                panic!("invariant watchdog: {detail}");
            }
        }
        self.last_detail = Some(detail);
    }

    /// Feeds one record through the checkers.
    pub fn observe(&mut self, rec: &TraceRecord, metrics: &mut Metrics) {
        match rec.event {
            TraceEvent::ConstreamGapCheck {
                pubend,
                prev,
                new_to,
            } => {
                let key = (rec.node, pubend);
                if let Some(&last) = self.constream.get(&key) {
                    if prev != last {
                        self.violate(
                            metrics,
                            WATCHDOG_CONSTREAM_GAP,
                            format!(
                                "constream gap at {} {pubend}: advance starts at {prev} \
                                 but previous advance ended at {last}",
                                rec.node
                            ),
                        );
                    }
                }
                self.constream.insert(key, new_to);
            }
            TraceEvent::DoubtAdvanced { pubend, horizon } => {
                let key = (rec.node, pubend);
                if let Some(&last) = self.doubt.get(&key) {
                    if horizon < last {
                        self.violate(
                            metrics,
                            WATCHDOG_DOUBT_REGRESSION,
                            format!(
                                "doubt horizon regressed at {} {pubend}: {horizon} < {last}",
                                rec.node
                            ),
                        );
                    }
                }
                self.doubt.insert(key, horizon);
            }
            TraceEvent::EventLogged { pubend, ts, .. } => {
                let key = (rec.node, pubend);
                if let Some(&last) = self.logged.get(&key) {
                    if ts <= last {
                        self.violate(
                            metrics,
                            WATCHDOG_DUPLICATE_LOG,
                            format!(
                                "only-once logging violated at {} {pubend}: logged {ts} \
                                 after {last}",
                                rec.node
                            ),
                        );
                    }
                }
                let e = self.logged.entry(key).or_insert(Timestamp::ZERO);
                *e = (*e).max(ts);
            }
            TraceEvent::NodeRestarted => {
                // Post-restart recovery rebuilds delivery state from the
                // persisted latestDelivered, which may sit below the
                // pre-crash in-memory frontier: both delivery-side
                // checkers restart from scratch. The logging checker
                // intentionally does NOT reset (see module docs).
                self.constream.retain(|&(n, _), _| n != rec.node);
                self.doubt.retain(|&(n, _), _| n != rec.node);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: NodeId = NodeId(3);
    const P: PubendId = PubendId(0);

    fn rec(event: TraceEvent) -> TraceRecord {
        TraceRecord {
            t_us: 1,
            node: N,
            event,
        }
    }

    fn quiet_watchdogs() -> Watchdogs {
        Watchdogs {
            panic_on_violation: false,
            ..Watchdogs::default()
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut buf = TraceBuffer::new();
        buf.set_capacity(2);
        for i in 0..5u64 {
            buf.push(TraceRecord {
                t_us: i,
                node: N,
                event: TraceEvent::NodeRestarted,
            });
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 3);
        let kept: Vec<u64> = buf.iter().map(|r| r.t_us).collect();
        assert_eq!(kept, vec![3, 4]);
        buf.set_capacity(0);
        assert!(buf.is_empty());
        buf.push(rec(TraceEvent::NodeRestarted));
        assert!(buf.is_empty());
    }

    #[test]
    fn constream_watchdog_accepts_contiguous_flags_gap() {
        let mut w = quiet_watchdogs();
        let mut m = Metrics::default();
        let adv = |prev: u64, new_to: u64| {
            rec(TraceEvent::ConstreamGapCheck {
                pubend: P,
                prev: Timestamp(prev),
                new_to: Timestamp(new_to),
            })
        };
        w.observe(&adv(0, 10), &mut m);
        w.observe(&adv(10, 25), &mut m);
        assert_eq!(w.violations(), 0);
        w.observe(&adv(30, 40), &mut m); // hole: 25 → 30
        assert_eq!(w.violations(), 1);
        assert_eq!(w.constream_gaps(), 1);
        assert_eq!(w.doubt_regressions(), 0);
        assert_eq!(m.counter(WATCHDOG_CONSTREAM_GAP), 1.0);
        assert!(w.last_detail().unwrap().contains("constream gap"));
    }

    #[test]
    fn constream_watchdog_resets_on_restart() {
        let mut w = quiet_watchdogs();
        let mut m = Metrics::default();
        w.observe(
            &rec(TraceEvent::ConstreamGapCheck {
                pubend: P,
                prev: Timestamp(0),
                new_to: Timestamp(50),
            }),
            &mut m,
        );
        w.observe(&rec(TraceEvent::NodeRestarted), &mut m);
        // Post-restart the constream restarts from the persisted
        // latestDelivered (here 20): not a gap.
        w.observe(
            &rec(TraceEvent::ConstreamGapCheck {
                pubend: P,
                prev: Timestamp(20),
                new_to: Timestamp(60),
            }),
            &mut m,
        );
        assert_eq!(w.violations(), 0);
    }

    #[test]
    fn doubt_watchdog_flags_regression() {
        let mut w = quiet_watchdogs();
        let mut m = Metrics::default();
        let at = |h: u64| {
            rec(TraceEvent::DoubtAdvanced {
                pubend: P,
                horizon: Timestamp(h),
            })
        };
        w.observe(&at(5), &mut m);
        w.observe(&at(5), &mut m); // equal is fine
        w.observe(&at(9), &mut m);
        assert_eq!(w.violations(), 0);
        w.observe(&at(4), &mut m);
        assert_eq!(w.violations(), 1);
        assert_eq!(w.doubt_regressions(), 1);
        assert_eq!(m.counter(WATCHDOG_DOUBT_REGRESSION), 1.0);
    }

    #[test]
    fn log_watchdog_flags_duplicate_and_survives_restart() {
        let mut w = quiet_watchdogs();
        let mut m = Metrics::default();
        let log = |ts: u64| {
            rec(TraceEvent::EventLogged {
                pubend: P,
                ts: Timestamp(ts),
                bytes: 418,
            })
        };
        w.observe(&log(3), &mut m);
        w.observe(&log(7), &mut m);
        assert_eq!(w.violations(), 0);
        w.observe(&rec(TraceEvent::NodeRestarted), &mut m);
        w.observe(&log(7), &mut m); // re-logging after restart is the §2 bug
        assert_eq!(w.violations(), 1);
        assert_eq!(w.double_logs(), 1);
        assert_eq!(m.counter(WATCHDOG_DUPLICATE_LOG), 1.0);
    }

    /// With `defer_panic`, an armed violation is held back for the
    /// caller (the simulator's flight recorder) instead of unwinding
    /// inside `observe`.
    #[test]
    fn armed_watchdog_defers_panic_when_asked() {
        let mut w = Watchdogs {
            panic_on_violation: true,
            defer_panic: true,
            ..Watchdogs::default()
        };
        let mut m = Metrics::default();
        let at = |h: u64| {
            rec(TraceEvent::DoubtAdvanced {
                pubend: P,
                horizon: Timestamp(h),
            })
        };
        w.observe(&at(9), &mut m);
        w.observe(&at(2), &mut m); // would panic undeferred
        assert_eq!(w.violations(), 1);
        let msg = w.take_deferred_panic().unwrap();
        assert!(msg.contains("doubt horizon regressed"));
        assert!(w.take_deferred_panic().is_none(), "taken exactly once");
    }

    #[test]
    #[should_panic(expected = "invariant watchdog")]
    fn watchdog_panics_when_armed() {
        let mut w = Watchdogs {
            panic_on_violation: true,
            ..Watchdogs::default()
        };
        let mut m = Metrics::default();
        w.observe(
            &rec(TraceEvent::DoubtAdvanced {
                pubend: P,
                horizon: Timestamp(9),
            }),
            &mut m,
        );
        w.observe(
            &rec(TraceEvent::DoubtAdvanced {
                pubend: P,
                horizon: Timestamp(2),
            }),
            &mut m,
        );
    }

    #[test]
    fn severities_cover_taxonomy() {
        assert_eq!(TraceEvent::NodeRestarted.severity(), Severity::Warn);
        assert_eq!(
            TraceEvent::Switchover {
                pubend: P,
                sub: SubscriberId(1),
                latency_us: 5
            }
            .severity(),
            Severity::Info
        );
        assert!(
            TraceEvent::PubendTimestamped {
                pubend: P,
                ts: Timestamp(1)
            }
            .severity()
                < Severity::Warn
        );
    }
}
