//! Online health engine: declarative rules over the telemetry timeline
//! (DESIGN.md §14).
//!
//! The windowed [`Sampler`](crate::telemetry::Sampler) turns raw metrics
//! into a [`Timeline`]; this module *judges* that timeline. A
//! [`HealthEngine`] holds a set of [`HealthRule`]s — gauge ceilings,
//! counter-rate bounds, sustained-growth trend detection, SLO burn rate
//! over latency quantile series — and is evaluated once per sample
//! window. Rules carry hysteresis: a rule transitions to *firing* when
//! its predicate first holds and back to *cleared* when it stops, and
//! each transition produces one [`AlertRecord`].
//!
//! # Determinism
//!
//! The engine is a pure observer, exactly like the sampler it feeds
//! from: it reads the timeline, never the scheduler, and only ever
//! considers samples at or before the evaluation time. Under the
//! simulator it runs between scheduler events at virtual sample times;
//! offline (`xp doctor check`) the same code replays over an exported
//! timeline at the same sample times and reproduces the identical alert
//! log — the replay-parity test in `tests/health.rs` pins this. A run
//! that raises zero alerts emits zero trace events from the engine, so
//! traces and deliveries stay bit-identical with the engine on or off
//! (`golden_determinism` asserts this).

use crate::telemetry::Timeline;

/// Which side of a hysteresis transition an [`AlertRecord`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// The rule's predicate started holding this window.
    Firing,
    /// The rule's predicate stopped holding this window.
    Cleared,
}

impl AlertState {
    /// Stable lowercase rendering (the ndjson wire form).
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertState::Firing => "firing",
            AlertState::Cleared => "cleared",
        }
    }
}

/// One hysteresis transition of one rule: the structured alert record
/// stored on the [`Timeline`], exported into run bundles, and mirrored
/// into the trace stream.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRecord {
    /// Sample-window time of the transition (virtual µs under the
    /// simulator, wall µs since net start under `gryphon-net`).
    pub t_us: u64,
    /// Rule name (`health.alert.<rule>` counts firing transitions).
    pub rule: String,
    /// The timeline series the rule watches.
    pub series: String,
    /// The observed value that crossed (or re-crossed) the threshold.
    pub value: f64,
    /// The rule's threshold at the transition.
    pub threshold: f64,
    /// Firing or cleared.
    pub state: AlertState,
    /// Human-readable one-liner for reports and `xp doctor inspect`.
    pub detail: String,
}

/// The predicate a [`HealthRule`] evaluates each window.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// Fires while the series' latest sample exceeds `limit`
    /// (instantaneous level check, e.g. queue depth).
    GaugeCeiling {
        /// Inclusive ceiling; the rule fires strictly above it.
        limit: f64,
    },
    /// Fires while the series' latest sample is below `min`
    /// (liveness floor, e.g. a delivery rate that must not stall).
    RateFloor {
        /// Inclusive floor; the rule fires strictly below it.
        min: f64,
    },
    /// Fires while the series' latest sample exceeds `max`. With
    /// `max: 0.0` on a violation-counter `.rate` series this is a
    /// "must never happen" rule.
    RateCeiling {
        /// Inclusive ceiling; the rule fires strictly above it.
        max: f64,
    },
    /// Trend detector: fires when the series did not decrease across
    /// any of the last `windows` window-over-window deltas *and* rose
    /// by at least `min_delta` in total — a backlog that keeps growing
    /// instead of draining.
    SustainedGrowth {
        /// Number of consecutive window deltas that must be ≥ 0.
        windows: usize,
        /// Minimum total rise over those windows.
        min_delta: f64,
    },
    /// Level check with persistence: fires only when the last
    /// `windows` samples *each* exceed `limit` — a one-window spike
    /// (e.g. a reconnect storm's fresh catchup streams reading as lag)
    /// stays quiet, a condition that holds across windows fires.
    SustainedCeiling {
        /// Inclusive ceiling; every recent sample must sit strictly
        /// above it.
        limit: f64,
        /// Number of consecutive recent samples that must breach
        /// (quiet until that many samples exist).
        windows: usize,
    },
    /// SLO burn rate over a latency quantile series (e.g.
    /// `lineage.stage.deliver_us.q99`): of the last `windows` samples,
    /// the fraction above `target` must stay within `budget`; the rule
    /// fires when the bad-window fraction exceeds the budget.
    SloBurn {
        /// Latency objective the watched quantile must stay under.
        target: f64,
        /// Tolerated fraction of bad windows in `[0, 1]`.
        budget: f64,
        /// Number of recent samples the burn fraction is computed over
        /// (the rule stays quiet until that many samples exist).
        windows: usize,
    },
}

/// A named rule binding a [`RuleKind`] to one timeline series.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthRule {
    /// Stable rule name; firing transitions bump
    /// `health.alert.<name>`.
    pub name: String,
    /// Timeline series the predicate reads.
    pub series: String,
    /// The predicate.
    pub kind: RuleKind,
}

impl HealthRule {
    /// Convenience constructor.
    pub fn new(name: &str, series: &str, kind: RuleKind) -> HealthRule {
        HealthRule {
            name: name.to_owned(),
            series: series.to_owned(),
            kind,
        }
    }

    /// The counter bumped on each firing transition of this rule.
    pub fn counter_name(&self) -> String {
        format!("health.alert.{}", self.name)
    }
}

/// The default rule set `xp --bundle-out` arms and `xp doctor check`
/// replays. Thresholds are deliberately generous: a healthy experiment —
/// including the reconnect churn the paper's workloads exercise — must
/// stay alert-free, so CI can assert "clean run ⇒ zero alerts".
pub fn default_rules() -> Vec<HealthRule> {
    use crate::metrics::names;
    vec![
        // Catchup backlog that keeps growing window over window means
        // recovery is not keeping up with the input stream (the
        // overload signal the flow-control roadmap item consumes).
        HealthRule::new(
            "catchup_backlog",
            names::TELEMETRY_CATCHUP_BACKLOG_TICKS,
            RuleKind::SustainedGrowth {
                windows: 4,
                min_delta: 500.0,
            },
        ),
        // Scheduler/channel queue depth far beyond anything a healthy
        // run reaches.
        HealthRule::new(
            "queue_depth",
            names::TELEMETRY_QUEUE_DEPTH,
            RuleKind::GaugeCeiling { limit: 1_000_000.0 },
        ),
        // Protocol invariants must never fire: any nonzero violation
        // rate in a window is an alert.
        HealthRule::new(
            "watchdog_constream_gap",
            &format!("{}.rate", names::WATCHDOG_CONSTREAM_GAP),
            RuleKind::RateCeiling { max: 0.0 },
        ),
        HealthRule::new(
            "watchdog_doubt_regress",
            &format!("{}.rate", names::WATCHDOG_DOUBT_REGRESSION),
            RuleKind::RateCeiling { max: 0.0 },
        ),
        HealthRule::new(
            "watchdog_double_log",
            &format!("{}.rate", names::WATCHDOG_DUPLICATE_LOG),
            RuleKind::RateCeiling { max: 0.0 },
        ),
        HealthRule::new(
            "ledger_duplicate",
            &format!("{}.rate", names::LINEAGE_LEDGER_DUPLICATE),
            RuleKind::RateCeiling { max: 0.0 },
        ),
        // End-to-end delivery SLO: the windowed p99 must not sit above
        // 30 virtual seconds for more than half the recent windows
        // (catchup after a long outage legitimately produces seconds of
        // latency; half a minute sustained means deliveries are stuck).
        HealthRule::new(
            "deliver_slo",
            &format!("{}.q99", names::LINEAGE_STAGE_DELIVER_US),
            RuleKind::SloBurn {
                target: 30_000_000.0,
                budget: 0.5,
                windows: 8,
            },
        ),
        // Lag-spectrum skew (DESIGN.md §18): the population's p99
        // delivery lag diverging from its p50 means a minority of
        // subscribers is falling far behind the median — the slow
        // consumers the top-K sketch then names. The spectrum buckets
        // are powers of two (±2× resolution), so the ceiling leaves
        // ample room above uniform-population noise.
        // Two consecutive windows: a reconnect storm leaves catchup
        // streams one window old (real lag, but transient by
        // construction); a subscriber still skewing the spectrum a
        // window later is genuinely stuck.
        HealthRule::new(
            "lag_skew",
            names::SKETCH_LAG_SKEW,
            RuleKind::SustainedCeiling {
                limit: 64.0,
                windows: 2,
            },
        ),
        // Single-entity dominance: one subscriber absorbing most of a
        // window's delivered bytes starves the rest of the population
        // (fairness signal for the admission-control roadmap item).
        HealthRule::new(
            "entity_dominance",
            names::SKETCH_DOMINANCE_SHARE,
            RuleKind::GaugeCeiling { limit: 0.75 },
        ),
    ]
}

/// Evaluates a rule set against a growing [`Timeline`] with hysteresis,
/// producing [`AlertRecord`]s on every firing/cleared transition.
///
/// Construction does nothing; call [`HealthEngine::evaluate`] once per
/// sample window (the simulator and the threaded runtime both do this
/// right after the sampler records the window).
#[derive(Debug, Clone)]
pub struct HealthEngine {
    rules: Vec<HealthRule>,
    firing: Vec<bool>,
    firings: u64,
}

impl HealthEngine {
    /// An engine over `rules` (see [`default_rules`]).
    pub fn new(rules: Vec<HealthRule>) -> HealthEngine {
        let firing = vec![false; rules.len()];
        HealthEngine {
            rules,
            firing,
            firings: 0,
        }
    }

    /// The rules under evaluation.
    pub fn rules(&self) -> &[HealthRule] {
        &self.rules
    }

    /// Total firing transitions so far.
    pub fn firings(&self) -> u64 {
        self.firings
    }

    /// Registers every rule's `health.alert.<rule>` counter at zero so
    /// snapshots and Prometheus exports show the armed rule set even on
    /// clean runs.
    pub fn prime(&self, metrics: &mut crate::metrics::Metrics) {
        for rule in &self.rules {
            metrics.count(&rule.counter_name(), 0.0);
        }
    }

    /// Evaluates every rule at sample time `t_us` against `timeline`,
    /// returning the transitions (possibly empty). Only samples at or
    /// before `t_us` are considered, which makes an offline replay over
    /// a complete exported timeline reproduce the online alert log
    /// exactly.
    pub fn evaluate(&mut self, t_us: u64, timeline: &Timeline) -> Vec<AlertRecord> {
        let mut out = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            let samples = timeline.series(&rule.series);
            let upto = samples.partition_point(|&(t, _)| t <= t_us);
            let window = &samples[..upto];
            let verdict = Self::judge(&rule.kind, window);
            let was_firing = self.firing[i];
            match verdict {
                Some((value, threshold, detail)) if !was_firing => {
                    self.firing[i] = true;
                    self.firings += 1;
                    out.push(AlertRecord {
                        t_us,
                        rule: rule.name.clone(),
                        series: rule.series.clone(),
                        value,
                        threshold,
                        state: AlertState::Firing,
                        detail,
                    });
                }
                None if was_firing => {
                    self.firing[i] = false;
                    let value = window.last().map(|&(_, v)| v).unwrap_or(0.0);
                    out.push(AlertRecord {
                        t_us,
                        rule: rule.name.clone(),
                        series: rule.series.clone(),
                        value,
                        threshold: 0.0,
                        state: AlertState::Cleared,
                        detail: format!("{} back within bounds", rule.series),
                    });
                }
                _ => {}
            }
        }
        out
    }

    /// Returns `Some((value, threshold, detail))` when the predicate
    /// holds over `window` (samples sorted by time, all ≤ now); `None`
    /// otherwise. Insufficient data never fires.
    fn judge(kind: &RuleKind, window: &[(u64, f64)]) -> Option<(f64, f64, String)> {
        let last = window.last().map(|&(_, v)| v);
        match *kind {
            RuleKind::GaugeCeiling { limit } => {
                let v = last?;
                (v > limit).then(|| (v, limit, format!("level {v} > ceiling {limit}")))
            }
            RuleKind::RateFloor { min } => {
                let v = last?;
                (v < min).then(|| (v, min, format!("rate {v} < floor {min}")))
            }
            RuleKind::RateCeiling { max } => {
                let v = last?;
                (v > max).then(|| (v, max, format!("rate {v} > ceiling {max}")))
            }
            RuleKind::SustainedGrowth { windows, min_delta } => {
                if window.len() < windows + 1 {
                    return None;
                }
                let tail = &window[window.len() - (windows + 1)..];
                let non_decreasing = tail.windows(2).all(|w| w[1].1 >= w[0].1);
                let rise = tail[tail.len() - 1].1 - tail[0].1;
                (non_decreasing && rise >= min_delta).then(|| {
                    (
                        rise,
                        min_delta,
                        format!("rose {rise:.0} over {windows} windows (min {min_delta:.0})"),
                    )
                })
            }
            RuleKind::SustainedCeiling { limit, windows } => {
                if window.len() < windows {
                    return None;
                }
                let tail = &window[window.len() - windows..];
                let v = tail[tail.len() - 1].1;
                tail.iter().all(|&(_, s)| s > limit).then(|| {
                    (
                        v,
                        limit,
                        format!("level {v} > ceiling {limit} for {windows} windows"),
                    )
                })
            }
            RuleKind::SloBurn {
                target,
                budget,
                windows,
            } => {
                if window.len() < windows {
                    return None;
                }
                let tail = &window[window.len() - windows..];
                let bad = tail.iter().filter(|&&(_, v)| v > target).count();
                let burn = bad as f64 / windows as f64;
                (burn > budget).then(|| {
                    (
                        burn,
                        budget,
                        format!("{bad}/{windows} windows above {target:.0} (budget {budget:.2})"),
                    )
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline_with(series: &str, samples: &[(u64, f64)]) -> Timeline {
        let mut t = Timeline::new(500);
        for &(ts, v) in samples {
            t.record(ts, series, v);
        }
        t
    }

    #[test]
    fn sustained_ceiling_ignores_one_window_spikes() {
        let rule = HealthRule::new(
            "skew",
            "g",
            RuleKind::SustainedCeiling {
                limit: 64.0,
                windows: 2,
            },
        );
        let mut e = HealthEngine::new(vec![rule]);
        // Spike for one window, back to normal: quiet throughout.
        let t = timeline_with("g", &[(500, 0.0), (1_000, 500_000.0), (1_500, 0.0)]);
        for at in [500, 1_000, 1_500] {
            assert!(e.evaluate(at, &t).is_empty(), "spike at {at} must not fire");
        }
        // Two consecutive breaching windows: fires at the second, and
        // clears as soon as one window drops back under.
        let t = timeline_with("g", &[(500, 500_000.0), (1_000, 500_000.0), (1_500, 0.0)]);
        let mut e = HealthEngine::new(vec![HealthRule::new(
            "skew",
            "g",
            RuleKind::SustainedCeiling {
                limit: 64.0,
                windows: 2,
            },
        )]);
        assert!(
            e.evaluate(500, &t).is_empty(),
            "one sample is not sustained"
        );
        let fired = e.evaluate(1_000, &t);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].state, AlertState::Firing);
        let cleared = e.evaluate(1_500, &t);
        assert_eq!(cleared.len(), 1);
        assert_eq!(cleared[0].state, AlertState::Cleared);
    }

    #[test]
    fn gauge_ceiling_fires_and_clears_with_hysteresis() {
        let rule = HealthRule::new("q", "g", RuleKind::GaugeCeiling { limit: 10.0 });
        let mut e = HealthEngine::new(vec![rule]);
        let t = timeline_with(
            "g",
            &[(500, 5.0), (1_000, 15.0), (1_500, 20.0), (2_000, 3.0)],
        );
        assert!(e.evaluate(500, &t).is_empty());
        let fired = e.evaluate(1_000, &t);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].state, AlertState::Firing);
        assert_eq!(fired[0].value, 15.0);
        // Still violated: no second record while already firing.
        assert!(e.evaluate(1_500, &t).is_empty());
        let cleared = e.evaluate(2_000, &t);
        assert_eq!(cleared.len(), 1);
        assert_eq!(cleared[0].state, AlertState::Cleared);
        assert_eq!(e.firings(), 1);
    }

    #[test]
    fn rate_bounds() {
        let mut e = HealthEngine::new(vec![
            HealthRule::new("stall", "r", RuleKind::RateFloor { min: 1.0 }),
            HealthRule::new("spike", "r", RuleKind::RateCeiling { max: 100.0 }),
        ]);
        let t = timeline_with("r", &[(500, 0.0), (1_000, 50.0), (1_500, 200.0)]);
        let a = e.evaluate(500, &t);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].rule, "stall");
        let b = e.evaluate(1_000, &t);
        // Stall clears, nothing else fires.
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].state, AlertState::Cleared);
        let c = e.evaluate(1_500, &t);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].rule, "spike");
    }

    #[test]
    fn missing_series_never_fires() {
        let mut e = HealthEngine::new(default_rules());
        let t = Timeline::new(500);
        for at in [500, 1_000, 1_500] {
            assert!(e.evaluate(at, &t).is_empty());
        }
        assert_eq!(e.firings(), 0);
    }

    #[test]
    fn sustained_growth_needs_monotone_rise() {
        let rule = HealthRule::new(
            "backlog",
            "b",
            RuleKind::SustainedGrowth {
                windows: 2,
                min_delta: 100.0,
            },
        );
        // Flat → growth → drain.
        let t = timeline_with(
            "b",
            &[
                (500, 0.0),
                (1_000, 0.0),
                (1_500, 400.0),
                (2_000, 900.0),
                (2_500, 600.0),
            ],
        );
        let mut e = HealthEngine::new(vec![rule.clone()]);
        assert!(e.evaluate(1_000, &t).is_empty(), "flat must not fire");
        let fired = e.evaluate(1_500, &t);
        assert_eq!(fired.len(), 1, "0→0→400 is a ≥100 monotone rise");
        assert!(e.evaluate(2_000, &t).is_empty(), "still firing");
        let cleared = e.evaluate(2_500, &t);
        assert_eq!(cleared[0].state, AlertState::Cleared);

        // A dip inside the lookback suppresses the trend.
        let dip = timeline_with("b", &[(500, 0.0), (1_000, 500.0), (1_500, 400.0)]);
        let mut e2 = HealthEngine::new(vec![rule]);
        assert!(e2.evaluate(1_500, &dip).is_empty());
    }

    #[test]
    fn slo_burn_counts_bad_windows() {
        let rule = HealthRule::new(
            "slo",
            "lat.q99",
            RuleKind::SloBurn {
                target: 1_000.0,
                budget: 0.5,
                windows: 4,
            },
        );
        let mut e = HealthEngine::new(vec![rule]);
        let t = timeline_with(
            "lat.q99",
            &[
                (500, 2_000.0),
                (1_000, 2_000.0),
                (1_500, 100.0),
                (2_000, 2_000.0),
                (2_500, 100.0),
                (3_000, 100.0),
            ],
        );
        // Fewer than `windows` samples: quiet even though all are bad.
        assert!(e.evaluate(1_000, &t).is_empty());
        // Last 4 of [2000,2000,100,2000]: 3/4 bad > 0.5 budget.
        let fired = e.evaluate(2_000, &t);
        assert_eq!(fired.len(), 1);
        assert!(fired[0].detail.contains("3/4"));
        // Last 4 of [100,2000,100,100]: 1/4 ≤ 0.5 → clears.
        let cleared = e.evaluate(3_000, &t);
        assert_eq!(cleared[0].state, AlertState::Cleared);
    }

    #[test]
    fn evaluate_ignores_future_samples() {
        // Offline replay parity: evaluating at t must not see samples
        // after t even when the timeline already contains them.
        let rule = HealthRule::new("q", "g", RuleKind::GaugeCeiling { limit: 10.0 });
        let t = timeline_with("g", &[(500, 5.0), (1_000, 99.0)]);
        let mut e = HealthEngine::new(vec![rule]);
        assert!(
            e.evaluate(500, &t).is_empty(),
            "the future 99.0 sample must be invisible at t=500"
        );
        assert_eq!(e.evaluate(1_000, &t).len(), 1);
    }

    #[test]
    fn prime_registers_zero_counters() {
        let e = HealthEngine::new(default_rules());
        let mut m = crate::metrics::Metrics::default();
        e.prime(&mut m);
        assert_eq!(m.counter("health.alert.catchup_backlog"), 0.0);
        assert!(m
            .counter_names()
            .iter()
            .all(|n| !n.starts_with("health.alert.") || m.counter(n) == 0.0));
        assert!(m.counter_names().len() >= default_rules().len());
    }
}
