//! Tail-latency forensics (DESIGN.md §17): bounded exemplar reservoirs
//! that tie histogram tail samples back to concrete lineage spans, and
//! bounded busy-interval rings behind the Perfetto trace export.
//!
//! End-of-run percentiles say *how slow* the tail was; they cannot say
//! *which event* was slow or *where its time went*. The forensics layer
//! closes that gap without perturbing the run:
//!
//! * [`ExemplarReservoir`] — every lineage-stage histogram observation
//!   is offered to a small reservoir. Samples at or above a cached tail
//!   quantile (default q99) survive; when the reservoir is full the
//!   smallest value is displaced so the window's worst offenders always
//!   win. The runtime drains the reservoir each sampler window,
//!   resolves every surviving [`TailSample`] against the live lineage
//!   span, and appends the resulting [`Exemplar`] to the timeline.
//! * [`IntervalRing`] — a flight-recorder ring of [`BusyInterval`]
//!   records (dispatch CPU time, modeled work, commit/fsync slices,
//!   queue waits). Oldest entries are evicted first, so the ring always
//!   holds the most recent history.
//!
//! Both structures are strictly bounded and count what they shed
//! (`forensics.exemplar_dropped` / `forensics.interval_dropped`), and
//! both are pure observers: arming them changes no queue order, no RNG
//! draw, and no scheduling decision, so `golden_determinism` stays
//! bit-identical with forensics on or off.

use crate::lineage::Span;
use crate::metrics::Metrics;
use gryphon_types::LineageKey;
use std::collections::VecDeque;

/// Observations a cached tail threshold serves before it is recomputed
/// from the live histogram — a percentile scan walks every bucket, too
/// costly to run per hot-path sample.
const THRESHOLD_REFRESH: u64 = 64;

/// Tuning for the forensics layer; [`ForensicsConfig::default`] matches
/// what `apply_sim_defaults` arms.
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicsConfig {
    /// Histogram quantile a sample must reach to qualify as a tail
    /// exemplar (computed over the cumulative distribution, refreshed
    /// every [`THRESHOLD_REFRESH`] observations per series).
    pub tail_quantile: f64,
    /// Minimum cumulative histogram count before a series produces
    /// exemplars at all — early on, every sample is "the tail".
    pub min_samples: u64,
    /// Reservoir bound between sampler windows; beyond it the smallest
    /// value is displaced (counted as dropped).
    pub reservoir: usize,
    /// Busy-interval ring bound (oldest evicted, counted as dropped).
    pub interval_capacity: usize,
}

impl Default for ForensicsConfig {
    fn default() -> ForensicsConfig {
        ForensicsConfig {
            tail_quantile: 0.99,
            min_samples: 64,
            reservoir: 32,
            interval_capacity: 65_536,
        }
    }
}

/// One histogram observation that landed in the tail, before span
/// resolution. `Copy` and allocation-free on purpose: offering a sample
/// on the hot path must not touch the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailSample {
    /// Observation time (virtual µs under the simulator, wall µs since
    /// net epoch under the threaded runtime) — the stage's *end*.
    pub t_us: u64,
    /// The histogram the sample landed in (a `names::LINEAGE_STAGE_*`).
    pub series: &'static str,
    /// The observed value (µs).
    pub value: f64,
    /// The event whose stage this was.
    pub key: LineageKey,
}

/// Per-series cached tail threshold (see [`THRESHOLD_REFRESH`]).
#[derive(Debug, Clone, PartialEq)]
struct CachedThreshold {
    series: &'static str,
    /// Observations since the threshold was last computed.
    stale: u64,
    threshold: f64,
}

/// Bounded keep-the-worst reservoir of tail samples. One lives in each
/// [`Lineage`](crate::Lineage) once armed; the runtimes drain it every
/// sampler window.
#[derive(Debug, Clone, PartialEq)]
pub struct ExemplarReservoir {
    tail_quantile: f64,
    min_samples: u64,
    cap: usize,
    samples: Vec<TailSample>,
    thresholds: Vec<CachedThreshold>,
    dropped: u64,
}

impl ExemplarReservoir {
    /// An empty reservoir with `cfg`'s quantile/bounds. Capacity is
    /// preallocated so offers never allocate.
    pub fn new(cfg: &ForensicsConfig) -> ExemplarReservoir {
        let cap = cfg.reservoir.max(1);
        ExemplarReservoir {
            tail_quantile: cfg.tail_quantile,
            min_samples: cfg.min_samples,
            cap,
            samples: Vec::with_capacity(cap),
            thresholds: Vec::with_capacity(16),
            dropped: 0,
        }
    }

    /// Offers one histogram observation. Call *after* the matching
    /// `metrics.observe(series, value)` so the cumulative distribution
    /// includes the sample; the cached q-threshold decides whether it
    /// qualifies as a tail exemplar.
    pub fn offer(
        &mut self,
        t_us: u64,
        series: &'static str,
        value: f64,
        key: LineageKey,
        metrics: &Metrics,
    ) {
        let slot = match self.thresholds.iter().position(|c| c.series == series) {
            Some(i) => &mut self.thresholds[i],
            None => {
                self.thresholds.push(CachedThreshold {
                    series,
                    stale: THRESHOLD_REFRESH,
                    threshold: f64::INFINITY,
                });
                self.thresholds.last_mut().expect("just pushed")
            }
        };
        slot.stale += 1;
        if slot.stale > THRESHOLD_REFRESH {
            slot.stale = 0;
            slot.threshold = match metrics.histogram(series) {
                Some(h) if h.count() >= self.min_samples => {
                    h.percentile(self.tail_quantile).unwrap_or(f64::INFINITY)
                }
                _ => f64::INFINITY,
            };
        }
        // Strictly above: with discrete latency distributions the
        // quantile often *equals* the mode, and admitting equality
        // would classify the bulk of samples as "tail".
        if value <= slot.threshold {
            return;
        }
        self.push(TailSample {
            t_us,
            series,
            value,
            key,
        });
    }

    /// Admits a qualified sample, displacing the smallest value when
    /// full (first minimum wins on ties — deterministic). The shed
    /// sample, displaced or rejected, counts as dropped either way.
    fn push(&mut self, s: TailSample) {
        if self.samples.len() < self.cap {
            self.samples.push(s);
            return;
        }
        let mut min = 0;
        for (i, cur) in self.samples.iter().enumerate() {
            if cur.value < self.samples[min].value {
                min = i;
            }
        }
        if s.value > self.samples[min].value {
            self.samples[min] = s;
        }
        self.dropped += 1;
    }

    /// Folds another reservoir's samples into this one (worker-shard
    /// merge at stop, in worker-index order).
    pub fn absorb(&mut self, other: &ExemplarReservoir) {
        for s in &other.samples {
            self.push(*s);
        }
        self.dropped += other.dropped;
    }

    /// Takes all held samples in canonical `(t_us, series, value)`
    /// order, leaving the reservoir empty (capacity retained).
    pub fn drain_sorted(&mut self) -> Vec<TailSample> {
        let mut out = self.samples.clone();
        self.samples.clear();
        out.sort_by(|a, b| {
            a.t_us
                .cmp(&b.t_us)
                .then(a.series.cmp(b.series))
                .then(a.value.total_cmp(&b.value))
        });
        out
    }

    /// Takes (and resets) the count of samples shed under pressure.
    pub fn take_dropped(&mut self) -> u64 {
        std::mem::take(&mut self.dropped)
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// A tail sample resolved against its lineage span: self-contained (no
/// live span needed to read it back from a bundle), one per line in
/// `exemplars.ndjson`.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// Stage-completion time of the captured observation.
    pub t_us: u64,
    /// The histogram the sample landed in.
    pub series: String,
    /// The observed value (µs).
    pub value: f64,
    /// [`LineageKey`] pubend component.
    pub pubend: u32,
    /// [`LineageKey`] tick component.
    pub ts: u64,
    /// Span anchors copied at resolution time (absent when the span was
    /// already evicted or the anchor never fired).
    pub birth_us: Option<u64>,
    /// Durable PHB log anchor.
    pub log_us: Option<u64>,
    /// First IB forward anchor.
    pub forward_us: Option<u64>,
    /// Earliest SHB ingest anchor across nodes.
    pub ingest_us: Option<u64>,
}

impl Exemplar {
    /// Resolves a drained [`TailSample`] against the (possibly already
    /// evicted) lineage span.
    pub fn resolve(s: &TailSample, span: Option<&Span>) -> Exemplar {
        Exemplar {
            t_us: s.t_us,
            series: s.series.to_owned(),
            value: s.value,
            pubend: s.key.pubend.0,
            ts: s.key.ts.0,
            birth_us: span.and_then(|sp| sp.birth_us),
            log_us: span.and_then(|sp| sp.log_us),
            forward_us: span.and_then(|sp| sp.forward_us),
            ingest_us: span.and_then(|sp| sp.ingest_us.values().min().copied()),
        }
    }

    /// The event this exemplar names.
    pub fn key(&self) -> LineageKey {
        LineageKey::new(
            gryphon_types::PubendId(self.pubend),
            gryphon_types::Timestamp(self.ts),
        )
    }

    /// Two-line human rendering for `doctor inspect`: the claim, then
    /// the stage-by-stage walk (`+N` = µs since the previous anchor).
    pub fn render(&self) -> String {
        let mut stages = String::new();
        let mut prev: Option<u64> = None;
        for (label, anchor) in [
            ("timestamped", self.birth_us),
            ("logged", self.log_us),
            ("forwarded", self.forward_us),
            ("ingested", self.ingest_us),
            ("observed", Some(self.t_us)),
        ] {
            let Some(at) = anchor else {
                continue;
            };
            if !stages.is_empty() {
                stages.push_str(" · ");
            }
            match prev {
                Some(p) => stages.push_str(&format!("{label} +{}", at.saturating_sub(p))),
                None => stages.push_str(&format!("{label} @{at}")),
            }
            prev = Some(at);
        }
        format!(
            "exemplar p{}/t{} {} = {} µs\n    {stages}",
            self.pubend, self.ts, self.series, self.value
        )
    }
}

/// Interval kind: CPU time inside a dispatch (wall-clocked).
pub const KIND_DISPATCH: &str = "dispatch";
/// Interval kind: modeled work charged via `NodeCtx::work` (simulator).
pub const KIND_BUSY: &str = "busy";
/// Interval kind: a group-commit round trip (batch close → durable).
pub const KIND_COMMIT: &str = "commit";
/// Interval kind: the leader's device flush inside a commit.
pub const KIND_FSYNC: &str = "fsync";
/// Interval kind: time a message waited in a worker's channel.
pub const KIND_QUEUE: &str = "queue";

/// Interns a parsed interval kind back to its `&'static str` (unknown
/// kinds collapse to `"other"` rather than failing the parse).
pub fn intern_kind(s: &str) -> &'static str {
    match s {
        "dispatch" => KIND_DISPATCH,
        "busy" => KIND_BUSY,
        "commit" => KIND_COMMIT,
        "fsync" => KIND_FSYNC,
        "queue" => KIND_QUEUE,
        _ => "other",
    }
}

/// One busy/wait interval on a track (simulator: node id; threaded
/// runtime: worker index). `Copy` — recording must not allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusyInterval {
    /// Track the slice belongs to (rendered as a Perfetto thread).
    pub track: u32,
    /// One of the `KIND_*` constants (or `"other"` after a parse).
    pub kind: &'static str,
    /// Interval start (same clock as [`TailSample::t_us`]).
    pub start_us: u64,
    /// Interval length.
    pub dur_us: u64,
}

/// Bounded flight-recorder ring of [`BusyInterval`]s: oldest evicted
/// first, evictions counted. Capacity is preallocated so pushes never
/// allocate.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRing {
    cap: usize,
    buf: VecDeque<BusyInterval>,
    dropped: u64,
}

impl IntervalRing {
    /// An empty ring holding at most `cap` intervals.
    pub fn new(cap: usize) -> IntervalRing {
        let cap = cap.max(1);
        IntervalRing {
            cap,
            buf: VecDeque::with_capacity(cap),
            dropped: 0,
        }
    }

    /// Records one interval, evicting (and counting) the oldest when
    /// full.
    pub fn push(&mut self, iv: BusyInterval) {
        if self.buf.len() >= self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(iv);
    }

    /// Takes all held intervals in record order, leaving the ring empty
    /// (capacity retained).
    pub fn drain(&mut self) -> Vec<BusyInterval> {
        let out: Vec<BusyInterval> = self.buf.iter().copied().collect();
        self.buf.clear();
        out
    }

    /// Takes (and resets) the count of intervals evicted under pressure.
    pub fn take_dropped(&mut self) -> u64 {
        std::mem::take(&mut self.dropped)
    }

    /// Intervals currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no intervals are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gryphon_types::{PubendId, Timestamp};

    fn key(ts: u64) -> LineageKey {
        LineageKey::new(PubendId(0), Timestamp(ts))
    }

    const SERIES: &str = "lineage.stage.deliver_us";

    /// Seeds a histogram whose q99 splits `slow` from the bulk.
    fn seeded_metrics() -> Metrics {
        let mut m = Metrics::default();
        for _ in 0..200 {
            m.observe(SERIES, 100.0);
        }
        m.observe(SERIES, 50_000.0);
        m
    }

    #[test]
    fn reservoir_admits_only_the_tail() {
        let m = seeded_metrics();
        let mut r = ExemplarReservoir::new(&ForensicsConfig::default());
        for i in 0..100 {
            r.offer(i, SERIES, 100.0, key(i), &m);
        }
        assert!(r.is_empty(), "bulk samples below q99 must not qualify");
        r.offer(500, SERIES, 60_000.0, key(500), &m);
        assert_eq!(r.len(), 1);
        let drained = r.drain_sorted();
        assert_eq!(drained[0].value, 60_000.0);
        assert_eq!(drained[0].key, key(500));
        assert!(r.is_empty(), "drain empties the reservoir");
    }

    #[test]
    fn reservoir_respects_min_samples_warmup() {
        let mut m = Metrics::default();
        // Fewer than min_samples observations: nothing qualifies, even
        // a huge value.
        for _ in 0..10 {
            m.observe(SERIES, 100.0);
        }
        let mut r = ExemplarReservoir::new(&ForensicsConfig::default());
        r.offer(1, SERIES, 1e9, key(1), &m);
        assert!(r.is_empty(), "cold histogram produces no exemplars");
    }

    /// The bounded-memory pin: a full reservoir displaces its smallest
    /// value (keep-the-worst), never grows past `cap`, and counts every
    /// shed sample.
    #[test]
    fn reservoir_evicts_under_pressure_and_counts_drops() {
        let m = seeded_metrics();
        let cfg = ForensicsConfig {
            reservoir: 4,
            ..ForensicsConfig::default()
        };
        let mut r = ExemplarReservoir::new(&cfg);
        // 10 qualifying samples with increasing values into a 4-slot
        // reservoir: the 4 largest survive, 6 are shed.
        for i in 0..10u64 {
            r.offer(i, SERIES, 50_000.0 + i as f64, key(i), &m);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.take_dropped(), 6);
        let worst: Vec<f64> = r.drain_sorted().iter().map(|s| s.value).collect();
        assert_eq!(worst, vec![50_006.0, 50_007.0, 50_008.0, 50_009.0]);
        // A smaller newcomer into a full reservoir is itself shed.
        for i in 0..4u64 {
            r.offer(i, SERIES, 60_000.0, key(i), &m);
        }
        r.offer(99, SERIES, 55_000.0, key(99), &m);
        assert_eq!(r.len(), 4);
        assert_eq!(r.take_dropped(), 1);
        assert!(r.drain_sorted().iter().all(|s| s.value == 60_000.0));
    }

    #[test]
    fn reservoir_absorb_merges_keeping_worst() {
        let m = seeded_metrics();
        let cfg = ForensicsConfig {
            reservoir: 2,
            ..ForensicsConfig::default()
        };
        let mut a = ExemplarReservoir::new(&cfg);
        let mut b = ExemplarReservoir::new(&cfg);
        a.offer(1, SERIES, 60_000.0, key(1), &m);
        b.offer(2, SERIES, 70_000.0, key(2), &m);
        b.offer(3, SERIES, 80_000.0, key(3), &m);
        a.absorb(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.take_dropped(), 1, "merge sheds the smallest");
        let vals: Vec<f64> = a.drain_sorted().iter().map(|s| s.value).collect();
        assert_eq!(vals, vec![70_000.0, 80_000.0]);
    }

    /// The bounded-memory pin for the interval ring: oldest out first,
    /// evictions counted, capacity never exceeded.
    #[test]
    fn interval_ring_evicts_oldest_and_counts() {
        let mut ring = IntervalRing::new(3);
        for i in 0..8u64 {
            ring.push(BusyInterval {
                track: 0,
                kind: KIND_BUSY,
                start_us: i,
                dur_us: 1,
            });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.take_dropped(), 5);
        let starts: Vec<u64> = ring.drain().iter().map(|iv| iv.start_us).collect();
        assert_eq!(starts, vec![5, 6, 7], "newest history survives");
        assert!(ring.is_empty());
    }

    #[test]
    fn exemplar_resolves_span_anchors_and_renders_stages() {
        let mut ingest_us = std::collections::BTreeMap::new();
        ingest_us.insert(gryphon_types::NodeId(3), 1_900);
        ingest_us.insert(gryphon_types::NodeId(4), 2_400);
        let span = Span {
            birth_us: Some(1_000),
            log_us: Some(1_300),
            ingest_us,
            ..Span::default()
        };
        let s = TailSample {
            t_us: 3_000,
            series: "lineage.stage.deliver_us",
            value: 2_000.0,
            key: key(41),
        };
        let ex = Exemplar::resolve(&s, Some(&span));
        assert_eq!(ex.birth_us, Some(1_000));
        assert_eq!(ex.log_us, Some(1_300));
        assert_eq!(ex.forward_us, None);
        assert_eq!(ex.ingest_us, Some(1_900), "earliest ingest wins");
        assert_eq!(ex.key(), key(41));
        let text = ex.render();
        assert!(text.contains("p0/t41"), "{text}");
        assert!(text.contains("timestamped @1000"), "{text}");
        assert!(text.contains("logged +300"), "{text}");
        assert!(text.contains("ingested +600"), "{text}");
        assert!(text.contains("observed +1100"), "{text}");
        // An evicted span still yields a (bare) exemplar.
        let bare = Exemplar::resolve(&s, None);
        assert_eq!(bare.birth_us, None);
        assert!(bare.render().contains("observed @3000"));
    }

    #[test]
    fn kind_interning_round_trips() {
        for k in [
            KIND_DISPATCH,
            KIND_BUSY,
            KIND_COMMIT,
            KIND_FSYNC,
            KIND_QUEUE,
        ] {
            assert_eq!(intern_kind(k), k);
        }
        assert_eq!(intern_kind("mystery"), "other");
    }
}
