//! Time-series and counter recording for experiments.

use std::collections::BTreeMap;

/// Metrics sink shared by all nodes in a run.
///
/// Series are `(virtual time µs, value)` samples; counters are plain
/// accumulators. The harness reduces series into the rates/percentiles
/// the paper's figures plot.
///
/// # Examples
///
/// ```
/// use gryphon_sim::Metrics;
/// let mut m = Metrics::default();
/// m.record(1_000, "rate", 5.0);
/// m.record(2_000, "rate", 7.0);
/// m.count("delivered", 2.0);
/// assert_eq!(m.series("rate").len(), 2);
/// assert_eq!(m.counter("delivered"), 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    series: BTreeMap<String, Vec<(u64, f64)>>,
    counters: BTreeMap<String, f64>,
}

impl Metrics {
    /// Appends a `(t_us, value)` sample to `name`.
    pub fn record(&mut self, t_us: u64, name: &str, value: f64) {
        self.series.entry(name.to_owned()).or_default().push((t_us, value));
    }

    /// Adds `delta` to counter `name`.
    pub fn count(&mut self, name: &str, delta: f64) {
        *self.counters.entry(name.to_owned()).or_insert(0.0) += delta;
    }

    /// The samples of series `name` (empty slice if never recorded).
    pub fn series(&self, name: &str) -> &[(u64, f64)] {
        self.series.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Counter value (0 if never counted).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// All series names (sorted).
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }

    /// All counter names (sorted).
    pub fn counter_names(&self) -> Vec<&str> {
        self.counters.keys().map(|s| s.as_str()).collect()
    }

    /// Sums samples of `name` into fixed windows of `window_us`, returning
    /// `(window_start_us, sum)` — the building block for the paper's
    /// events-per-second plots.
    pub fn windowed_sum(&self, name: &str, window_us: u64) -> Vec<(u64, f64)> {
        let mut out: BTreeMap<u64, f64> = BTreeMap::new();
        for &(t, v) in self.series(name) {
            *out.entry((t / window_us) * window_us).or_insert(0.0) += v;
        }
        out.into_iter().collect()
    }

    /// Mean of all samples of `name` (`None` when empty).
    pub fn mean(&self, name: &str) -> Option<f64> {
        let s = self.series(name);
        if s.is_empty() {
            return None;
        }
        Some(s.iter().map(|&(_, v)| v).sum::<f64>() / s.len() as f64)
    }

    /// Standard deviation of all samples of `name`.
    pub fn std_dev(&self, name: &str) -> Option<f64> {
        let s = self.series(name);
        if s.len() < 2 {
            return None;
        }
        let mean = self.mean(name)?;
        let var = s.iter().map(|&(_, v)| (v - mean).powi(2)).sum::<f64>() / s.len() as f64;
        Some(var.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_sum_buckets_by_window_start() {
        let mut m = Metrics::default();
        m.record(100, "x", 1.0);
        m.record(900, "x", 2.0);
        m.record(1_100, "x", 5.0);
        let w = m.windowed_sum("x", 1_000);
        assert_eq!(w, vec![(0, 3.0), (1_000, 5.0)]);
    }

    #[test]
    fn mean_and_std_dev() {
        let mut m = Metrics::default();
        for (i, v) in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().enumerate() {
            m.record(i as u64, "d", *v);
        }
        assert_eq!(m.mean("d"), Some(5.0));
        assert!((m.std_dev("d").unwrap() - 2.0).abs() < 1e-9);
        assert_eq!(m.mean("missing"), None);
    }

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::default();
        m.count("c", 1.0);
        m.count("c", 2.5);
        assert_eq!(m.counter("c"), 3.5);
        assert_eq!(m.counter("other"), 0.0);
    }

    #[test]
    fn names_listed_sorted() {
        let mut m = Metrics::default();
        m.record(0, "b", 0.0);
        m.record(0, "a", 0.0);
        m.count("z", 1.0);
        assert_eq!(m.series_names(), vec!["a", "b"]);
        assert_eq!(m.counter_names(), vec!["z"]);
    }
}
