//! Time-series, counter and histogram recording for experiments.

use std::collections::BTreeMap;

/// The documented metric-name registry.
///
/// Every name the broker state machines and the runtime emit lives here
/// so experiments and tests reference constants instead of retyping
/// strings. The registry is the source of truth for what a name means;
/// `DESIGN.md` §Observability mirrors this table.
pub mod names {
    /// Counter: bytes appended to the PHB event log (stable-storage
    /// write volume, §2).
    pub const PHB_LOG_BYTES: &str = "phb.log_bytes";
    /// Counter: events durably logged at the PHB.
    pub const PHB_LOG_EVENTS: &str = "phb.log_events";
    /// Series: doubt-horizon width in ticks, sampled per SHB whenever
    /// the horizon moves (`clean − doubt`, §3).
    pub const SHB_DOUBT_WIDTH: &str = "shb.doubt_width";
    /// Counter: ticks delivered to subscribers via the consolidated
    /// stream (§4.1).
    pub const SHB_CONSTREAM_DELIVERED: &str = "shb.constream_delivered";
    /// Counter: ticks delivered via per-subscriber catchup streams (§4.1).
    pub const SHB_CATCHUP_DELIVERED: &str = "shb.catchup_delivered";
    /// Histogram: catchup duration from `CatchupStarted` to `Switchover`
    /// in virtual µs (§4.1).
    pub const SHB_SWITCHOVER_LATENCY_US: &str = "shb.switchover_latency_us";
    /// Histogram: filtered-event-store records visited per backpointer
    /// batch read (§4.2).
    pub const PFS_BATCH_READ_RECORDS: &str = "pfs.batch_read_records";
    /// Histogram: matched `Q` ticks returned per PFS batch read.
    pub const PFS_BATCH_READ_QTICKS: &str = "pfs.batch_read_qticks";
    /// Histogram: distinct downstream requests merged per upstream nack
    /// (curiosity consolidation fan-in, §4.3).
    pub const CURIOSITY_NACK_FANIN: &str = "curiosity.nack_fanin";
    /// Counter: nacks sent upstream after consolidation.
    pub const CURIOSITY_NACKS_SENT: &str = "curiosity.nacks_sent";
    /// Counter: release-protocol advances of `released(p)` (§3.4).
    pub const RELEASE_ADVANCES: &str = "release.advances";
    /// Counter: ticks converted to `L` (lost) by log chops (§3.4).
    pub const RELEASE_L_CONVERSIONS: &str = "release.l_conversions";
    /// Counter: gap-free-constream watchdog violations.
    pub const WATCHDOG_CONSTREAM_GAP: &str = "watchdog.constream_gap";
    /// Counter: monotone-doubt-horizon watchdog violations.
    pub const WATCHDOG_DOUBT_REGRESSION: &str = "watchdog.doubt_regress";
    /// Counter: only-once-logging watchdog violations.
    pub const WATCHDOG_DUPLICATE_LOG: &str = "watchdog.double_log";
    /// Counter: trace records evicted from the ring buffer. Non-zero
    /// means trace/lineage analysis over the ring is incomplete (the
    /// lineage assembler itself observes the stream pre-eviction and is
    /// unaffected).
    pub const TRACE_DROPPED: &str = "trace.dropped_records";
    /// Histogram: virtual µs from pubend timestamping to durable PHB log.
    pub const LINEAGE_STAGE_LOG_US: &str = "lineage.stage.log_us";
    /// Histogram: virtual µs from PHB log to the IB forwarding the event
    /// downstream.
    pub const LINEAGE_STAGE_IB_FORWARD_US: &str = "lineage.stage.ib_forward_us";
    /// Histogram: virtual µs from IB forward (or PHB log on a combined
    /// broker) to SHB ingest.
    pub const LINEAGE_STAGE_SHB_INGEST_US: &str = "lineage.stage.shb_ingest_us";
    /// Histogram: virtual µs an event spent resident at the SHB before a
    /// **catchup-path** delivery (ingest → deliver).
    pub const LINEAGE_STAGE_CATCHUP_US: &str = "lineage.stage.catchup_us";
    /// Histogram: virtual µs an event spent resident at the SHB before a
    /// **constream-path** delivery (ingest → deliver).
    pub const LINEAGE_STAGE_CONSTREAM_US: &str = "lineage.stage.constream_us";
    /// Histogram: end-to-end virtual µs from pubend timestamping to
    /// subscriber delivery.
    pub const LINEAGE_STAGE_DELIVER_US: &str = "lineage.stage.deliver_us";
    /// Counter: ledger violations — an event delivered twice to the same
    /// subscriber within one connection session.
    pub const LINEAGE_LEDGER_DUPLICATE: &str = "lineage.ledger.duplicate";
    /// Counter: ledger violations — a delivery at or below the session's
    /// resume checkpoint (duplicate across a reconnect).
    pub const LINEAGE_LEDGER_RECONNECT_DUPLICATE: &str = "lineage.ledger.reconnect_duplicate";
    /// Counter: ledger violations — a gap message covering ticks beyond
    /// the release/L-conversion boundary (data declared lost that the
    /// system never released).
    pub const LINEAGE_LEDGER_GAP_BEYOND_RELEASE: &str = "lineage.ledger.gap_beyond_release";
    /// Counter: lineage spans evicted to bound assembler memory (their
    /// late stage events then count as orphans).
    pub const LINEAGE_SPANS_EVICTED: &str = "lineage.spans_evicted";
    /// Counter: stage events whose predecessor anchor was unknown
    /// (evicted span or recovery-path re-emission).
    pub const LINEAGE_STAGE_ORPHANS: &str = "lineage.stage_orphans";
    /// Series: per-delivery lag between the SHB's doubt horizon and the
    /// delivered tick, in ticks (how far behind the frontier a
    /// subscriber runs).
    pub const LINEAGE_LAG_DOUBT_TICKS: &str = "lineage.lag.doubt_horizon_ticks";
    /// Series: catchup backlog depth at `CatchupStarted`, in ticks
    /// (constream frontier − resume point).
    pub const LINEAGE_LAG_CATCHUP_BACKLOG_TICKS: &str = "lineage.lag.catchup_backlog_ticks";
    /// Counter: flight-recorder post-mortem dumps written.
    pub const LINEAGE_FLIGHT_DUMPS: &str = "lineage.flight_dumps";
    /// Counter: messages a broker received but has no handler for
    /// (e.g. server-bound messages misdelivered to a broker).
    pub const BROKER_UNEXPECTED_MSG: &str = "broker.unexpected_msg";
    /// Histogram: knowledge parts per batched downstream knowledge
    /// message (IB fan-out batching; silence consolidation, §3.2).
    pub const IB_KNOWLEDGE_BATCH_PARTS: &str = "ib.knowledge_batch_parts";
    /// Histogram: virtual µs a flushed knowledge batch waited between
    /// its first enqueued part and the flush (latency cost of batching).
    pub const IB_KNOWLEDGE_FLUSH_WAIT_US: &str = "ib.knowledge_flush_wait_us";
    /// Counter: batched knowledge messages flushed downstream.
    pub const IB_KNOWLEDGE_BATCHES: &str = "ib.knowledge_batches";
    /// Gauge: runtime queue depth. In the simulator this is the
    /// scheduler's outstanding-event count at each sample; in the
    /// threaded runtime each worker publishes its bounded-channel
    /// occupancy under a `.w<i>` shard suffix and the sampler derives
    /// the unsuffixed aggregate (see DESIGN.md §13).
    pub const TELEMETRY_QUEUE_DEPTH: &str = "telemetry.queue_depth";
    /// Gauge: fraction of wall time a threaded-runtime worker spent
    /// processing messages/timers over the last sample window
    /// (`.w<i>` shard suffix; aggregate is the mean-free *sum*, so
    /// divide by worker count for a mean).
    pub const TELEMETRY_WORKER_UTILIZATION: &str = "telemetry.worker_utilization";
    /// Histogram: wall-clock µs a threaded-runtime worker spent inside
    /// one `on_message` dispatch (message service time). Only recorded
    /// while the telemetry sampler is enabled.
    pub const TELEMETRY_SERVICE_TIME_US: &str = "telemetry.service_time_us";
    /// Gauge: doubt-horizon width in ticks per hosted constream
    /// (`frontier − processed_to`), published under `.n<node>.p<pubend>`
    /// shard suffixes; the sampler derives the unsuffixed sum.
    pub const TELEMETRY_DOUBT_WIDTH_TICKS: &str = "telemetry.doubt_width_ticks";
    /// Gauge: outstanding catchup backlog in ticks summed over an SHB's
    /// active per-subscriber catchup streams (`constream cursor −
    /// delivered_to` per stream), published under a `.n<node>` shard
    /// suffix; spikes after a crash/reconnect and drains to zero.
    pub const TELEMETRY_CATCHUP_BACKLOG_TICKS: &str = "telemetry.catchup_backlog_ticks";
    /// Gauge: active per-subscriber catchup streams at an SHB
    /// (`.n<node>` shard suffix).
    pub const TELEMETRY_CATCHUP_STREAMS: &str = "telemetry.catchup_streams";
    /// Gauge: approximate heap bytes of an SHB's `SubscriberTable` slab
    /// (all per-subscriber state: specs, filters, release cursors,
    /// parked-stream records, live connections), published under a
    /// `.n<node>` shard suffix; shard-local slabs add on merge.
    pub const TELEMETRY_SHB_SLAB_BYTES: &str = "telemetry.shb.slab_bytes";
    /// Gauge: `SubscriberTable::approx_bytes()` divided by the number of
    /// *idle* (registered but disconnected) durable subscribers at an
    /// SHB — the paper-scale memory figure a million-subscriber broker
    /// is sized by (`.n<node>` shard suffix; DESIGN.md §15). Guarded by
    /// `xp doctor diff` so memory-per-subscriber regressions fail the
    /// gate.
    pub const TELEMETRY_SHB_BYTES_PER_IDLE_SUB: &str = "telemetry.shb.bytes_per_idle_sub";
    /// Counter family: firing transitions of health-engine rules
    /// (DESIGN.md §14). Each rule `<r>` bumps `health.alert.<r>`; the
    /// constants below register the default rule set so exporters and
    /// the registry test see the family even when it never fires.
    pub const HEALTH_ALERT_CATCHUP_BACKLOG: &str = "health.alert.catchup_backlog";
    /// Counter: firing transitions of the `queue_depth` gauge-ceiling rule.
    pub const HEALTH_ALERT_QUEUE_DEPTH: &str = "health.alert.queue_depth";
    /// Counter: firing transitions of the gap-free-constream rate rule.
    pub const HEALTH_ALERT_WATCHDOG_CONSTREAM_GAP: &str = "health.alert.watchdog_constream_gap";
    /// Counter: firing transitions of the monotone-doubt-horizon rate rule.
    pub const HEALTH_ALERT_WATCHDOG_DOUBT_REGRESS: &str = "health.alert.watchdog_doubt_regress";
    /// Counter: firing transitions of the only-once-logging rate rule.
    pub const HEALTH_ALERT_WATCHDOG_DOUBLE_LOG: &str = "health.alert.watchdog_double_log";
    /// Counter: firing transitions of the exactly-once-ledger rate rule.
    pub const HEALTH_ALERT_LEDGER_DUPLICATE: &str = "health.alert.ledger_duplicate";
    /// Counter: firing transitions of the delivery-latency SLO burn rule.
    pub const HEALTH_ALERT_DELIVER_SLO: &str = "health.alert.deliver_slo";
    /// Histogram: records appended by one group-committed batch through
    /// the storage `CommitPipeline` (PHB event batches, JMS checkpoint
    /// transactions).
    pub const STORAGE_COMMIT_BATCH_RECORDS: &str = "storage.commit.batch_records";
    /// Histogram: commits made durable by the single device flush that
    /// covered this commit (group-commit coalescing factor; 1 = the
    /// commit paid its own flush).
    pub const STORAGE_COMMIT_GROUP_SIZE: &str = "storage.commit.group_size";
    /// Histogram: wall-clock µs a committer waited from append completion
    /// to durability (zero in deterministic simulator runs — the pipeline
    /// only measures time under `with_timing`).
    pub const STORAGE_COMMIT_SYNC_WAIT_US: &str = "storage.commit.sync_wait_us";
    /// Histogram: wall-clock µs the covering device flush took (zero in
    /// deterministic simulator runs and for followers that joined after
    /// the flush completed).
    pub const STORAGE_COMMIT_FSYNC_US: &str = "storage.commit.fsync_us";
    /// Histogram: `sync_wait_us` restricted to commits that performed
    /// the covering flush themselves (group-commit **leaders**). The
    /// leader's wait is the device flush plus the group window, so the
    /// leader/follower split attributes commit latency to contention vs
    /// the device (DESIGN.md §17).
    pub const STORAGE_COMMIT_SYNC_WAIT_LEADER_US: &str = "storage.commit.sync_wait_leader_us";
    /// Histogram: `sync_wait_us` restricted to commits that rode on
    /// another committer's flush (group-commit **followers**) — pure
    /// queueing/contention time, no device work of their own.
    pub const STORAGE_COMMIT_SYNC_WAIT_FOLLOWER_US: &str = "storage.commit.sync_wait_follower_us";
    /// Histogram: wall-clock µs a threaded-runtime message waited in a
    /// worker's bounded channel between enqueue and dispatch. Only
    /// recorded while the telemetry sampler is armed; together with
    /// `telemetry.service_time_us` it splits worker latency into
    /// queueing vs CPU time (DESIGN.md §17).
    pub const NET_QUEUE_WAIT_US: &str = "net.queue_wait_us";
    /// Counter: tail exemplars rejected because the per-window reservoir
    /// was full — the forensics layer bounds memory by dropping (and
    /// counting) instead of growing.
    pub const FORENSICS_EXEMPLAR_DROPPED: &str = "forensics.exemplar_dropped";
    /// Counter: busy-interval records evicted from the bounded interval
    /// ring (oldest first); the retained ring is the run's tail.
    pub const FORENSICS_INTERVAL_DROPPED: &str = "forensics.interval_dropped";
    /// Counter: top-K snapshots evicted from the bounded timeline
    /// stream (oldest first), same shed-and-count policy as the
    /// exemplar/interval streams.
    pub const FORENSICS_TOPK_DROPPED: &str = "forensics.topk_dropped";
    /// Gauge: subscribers covered by the last slab sweep feeding the
    /// lag spectrum (DESIGN.md §18).
    pub const SKETCH_LAG_POPULATION: &str = "sketch.sub_lag.population";
    /// Gauge: median per-subscriber delivery lag from the last swept
    /// window's lag spectrum (bucket upper bound, µs).
    pub const SKETCH_LAG_P50_US: &str = "sketch.sub_lag.p50_us";
    /// Gauge: 99th-percentile per-subscriber delivery lag from the last
    /// swept window's lag spectrum (bucket upper bound, µs).
    pub const SKETCH_LAG_P99_US: &str = "sketch.sub_lag.p99_us";
    /// Gauge: worst per-subscriber delivery lag in the last swept
    /// window (exact, µs).
    pub const SKETCH_LAG_MAX_US: &str = "sketch.sub_lag.max_us";
    /// Gauge: lag-spectrum skew, `p99 ÷ max(p50, 1)` — ≈1 for a uniform
    /// population, large when a minority of subscribers falls far
    /// behind the median. Judged by the `lag_skew` health rule.
    pub const SKETCH_LAG_SKEW: &str = "sketch.sub_lag.skew";
    /// Gauge: share of the window's delivered bytes attributed to the
    /// single hottest subscriber (0..1). Judged by the
    /// `entity_dominance` health rule.
    pub const SKETCH_DOMINANCE_SHARE: &str = "sketch.dominance_share";
    /// Counter: firing transitions of the lag-spectrum skew rule.
    pub const HEALTH_ALERT_LAG_SKEW: &str = "health.alert.lag_skew";
    /// Counter: firing transitions of the single-entity dominance rule.
    pub const HEALTH_ALERT_ENTITY_DOMINANCE: &str = "health.alert.entity_dominance";

    /// Every registered metric name. Tests use this to verify the
    /// registry is complete (no constant missing from the list, no
    /// duplicates) and that telemetry series trace back to a registered
    /// base name after stripping shard (`.n3`/`.p0`/`.w1`) and `.rate`
    /// suffixes.
    pub const fn all() -> &'static [&'static str] {
        &[
            PHB_LOG_BYTES,
            PHB_LOG_EVENTS,
            SHB_DOUBT_WIDTH,
            SHB_CONSTREAM_DELIVERED,
            SHB_CATCHUP_DELIVERED,
            SHB_SWITCHOVER_LATENCY_US,
            PFS_BATCH_READ_RECORDS,
            PFS_BATCH_READ_QTICKS,
            CURIOSITY_NACK_FANIN,
            CURIOSITY_NACKS_SENT,
            RELEASE_ADVANCES,
            RELEASE_L_CONVERSIONS,
            WATCHDOG_CONSTREAM_GAP,
            WATCHDOG_DOUBT_REGRESSION,
            WATCHDOG_DUPLICATE_LOG,
            TRACE_DROPPED,
            LINEAGE_STAGE_LOG_US,
            LINEAGE_STAGE_IB_FORWARD_US,
            LINEAGE_STAGE_SHB_INGEST_US,
            LINEAGE_STAGE_CATCHUP_US,
            LINEAGE_STAGE_CONSTREAM_US,
            LINEAGE_STAGE_DELIVER_US,
            LINEAGE_LEDGER_DUPLICATE,
            LINEAGE_LEDGER_RECONNECT_DUPLICATE,
            LINEAGE_LEDGER_GAP_BEYOND_RELEASE,
            LINEAGE_SPANS_EVICTED,
            LINEAGE_STAGE_ORPHANS,
            LINEAGE_LAG_DOUBT_TICKS,
            LINEAGE_LAG_CATCHUP_BACKLOG_TICKS,
            LINEAGE_FLIGHT_DUMPS,
            BROKER_UNEXPECTED_MSG,
            IB_KNOWLEDGE_BATCH_PARTS,
            IB_KNOWLEDGE_FLUSH_WAIT_US,
            IB_KNOWLEDGE_BATCHES,
            TELEMETRY_QUEUE_DEPTH,
            TELEMETRY_WORKER_UTILIZATION,
            TELEMETRY_SERVICE_TIME_US,
            TELEMETRY_DOUBT_WIDTH_TICKS,
            TELEMETRY_CATCHUP_BACKLOG_TICKS,
            TELEMETRY_CATCHUP_STREAMS,
            TELEMETRY_SHB_SLAB_BYTES,
            TELEMETRY_SHB_BYTES_PER_IDLE_SUB,
            HEALTH_ALERT_CATCHUP_BACKLOG,
            HEALTH_ALERT_QUEUE_DEPTH,
            HEALTH_ALERT_WATCHDOG_CONSTREAM_GAP,
            HEALTH_ALERT_WATCHDOG_DOUBT_REGRESS,
            HEALTH_ALERT_WATCHDOG_DOUBLE_LOG,
            HEALTH_ALERT_LEDGER_DUPLICATE,
            HEALTH_ALERT_DELIVER_SLO,
            STORAGE_COMMIT_BATCH_RECORDS,
            STORAGE_COMMIT_GROUP_SIZE,
            STORAGE_COMMIT_SYNC_WAIT_US,
            STORAGE_COMMIT_FSYNC_US,
            STORAGE_COMMIT_SYNC_WAIT_LEADER_US,
            STORAGE_COMMIT_SYNC_WAIT_FOLLOWER_US,
            NET_QUEUE_WAIT_US,
            FORENSICS_EXEMPLAR_DROPPED,
            FORENSICS_INTERVAL_DROPPED,
            FORENSICS_TOPK_DROPPED,
            SKETCH_LAG_POPULATION,
            SKETCH_LAG_P50_US,
            SKETCH_LAG_P99_US,
            SKETCH_LAG_MAX_US,
            SKETCH_LAG_SKEW,
            SKETCH_DOMINANCE_SHARE,
            HEALTH_ALERT_LAG_SKEW,
            HEALTH_ALERT_ENTITY_DOMINANCE,
        ]
    }
}

/// Exponential histogram bucketing: each bucket boundary is a
/// quarter-power of two (`2^(i/4)`), giving ≤ ~19% relative error per
/// bucket over the full `f64` positive range with ~250 buckets.
const BUCKET_FACTOR_LOG2: f64 = 0.25;
/// Index offset so sub-1.0 values land in non-negative buckets.
const BUCKET_OFFSET: usize = 128;
/// Total bucket count (values above the top boundary clamp into the
/// last bucket).
const BUCKET_COUNT: usize = 384;

fn bucket_index(v: f64) -> usize {
    if v <= 0.0 {
        return 0;
    }
    let idx = (v.log2() / BUCKET_FACTOR_LOG2).ceil() as i64 + BUCKET_OFFSET as i64;
    idx.clamp(0, BUCKET_COUNT as i64 - 1) as usize
}

/// Upper boundary of bucket `i` (inclusive).
fn bucket_upper(i: usize) -> f64 {
    ((i as f64 - BUCKET_OFFSET as f64) * BUCKET_FACTOR_LOG2).exp2()
}

/// Fixed-bucket exponential histogram for latency/size distributions.
///
/// Buckets are quarter-powers of two, so any reported percentile is
/// within ~19% of the true sample value; exact `min`/`max`/`sum`/`count`
/// are kept on the side and percentile results are clamped to
/// `[min, max]`.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// Records one sample. Negative samples are clamped to 0.
    pub fn observe(&mut self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { return };
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The `q`-quantile (`q` in `[0, 1]`), `None` when empty.
    ///
    /// Walks the cumulative bucket counts to the target rank and
    /// interpolates linearly within the covering bucket, then clamps to
    /// the exact observed `[min, max]` so the tails are never
    /// extrapolated beyond real samples.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let prev = cum as f64;
            cum += n;
            if (cum as f64) >= target {
                let lower = if i == 0 { 0.0 } else { bucket_upper(i - 1) };
                let upper = bucket_upper(i);
                let frac = if n == 0 {
                    0.0
                } else {
                    (target - prev) / n as f64
                };
                let est = lower + (upper - lower) * frac.clamp(0.0, 1.0);
                return Some(est.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The window histogram between a past snapshot `prev` of this same
    /// histogram and now: bucket-wise subtraction, so percentiles of the
    /// result describe only the samples observed *since* `prev`. The
    /// telemetry sampler uses this to turn cumulative stage histograms
    /// into per-window quantile series.
    ///
    /// Exact `min`/`max` cannot be recovered for the window alone, so
    /// they are re-estimated from the first/last non-empty delta bucket
    /// bounds, clamped into the cumulative `[min, max]` — the same ~19%
    /// bucket error as any other quantile read.
    pub fn delta_since(&self, prev: &Histogram) -> Histogram {
        let mut out = Histogram::default();
        let mut first = None;
        let mut last = None;
        for (i, (&cur, &old)) in self.buckets.iter().zip(&prev.buckets).enumerate() {
            let d = cur.saturating_sub(old);
            out.buckets[i] = d;
            if d > 0 {
                first.get_or_insert(i);
                last = Some(i);
            }
        }
        out.count = self.count.saturating_sub(prev.count);
        out.sum = (self.sum - prev.sum).max(0.0);
        if out.count > 0 {
            let lo = match first {
                Some(0) | None => 0.0,
                Some(i) => bucket_upper(i - 1),
            };
            let hi = last.map(bucket_upper).unwrap_or(0.0);
            out.min = lo.max(self.min);
            out.max = hi.min(self.max).max(out.min);
        }
        out
    }

    /// Folds `other` into `self` (bucket-wise addition; exact side
    /// statistics combine losslessly). Used to aggregate per-worker
    /// histograms from the threaded runtime into one run-wide view.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Metrics sink shared by all nodes in a run.
///
/// Series are `(virtual time µs, value)` samples; counters are plain
/// accumulators. The harness reduces series into the rates/percentiles
/// the paper's figures plot.
///
/// # Examples
///
/// ```
/// use gryphon_sim::Metrics;
/// let mut m = Metrics::default();
/// m.record(1_000, "rate", 5.0);
/// m.record(2_000, "rate", 7.0);
/// m.count("delivered", 2.0);
/// assert_eq!(m.series("rate").len(), 2);
/// assert_eq!(m.counter("delivered"), 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    series: BTreeMap<String, Vec<(u64, f64)>>,
    counters: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    gauges: BTreeMap<String, f64>,
}

impl Metrics {
    /// Appends a `(t_us, value)` sample to `name`.
    pub fn record(&mut self, t_us: u64, name: &str, value: f64) {
        self.series
            .entry(name.to_owned())
            .or_default()
            .push((t_us, value));
    }

    /// Adds `delta` to counter `name`.
    pub fn count(&mut self, name: &str, delta: f64) {
        *self.counters.entry(name.to_owned()).or_insert(0.0) += delta;
    }

    /// The samples of series `name` (empty slice if never recorded).
    pub fn series(&self, name: &str) -> &[(u64, f64)] {
        self.series.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Counter value (0 if never counted).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// Records one sample into histogram `name`.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(value);
    }

    /// The `q`-quantile of histogram `name` (`None` when absent/empty).
    ///
    /// ```
    /// use gryphon_sim::Metrics;
    /// let mut m = Metrics::default();
    /// for v in [1.0, 2.0, 3.0, 100.0] {
    ///     m.observe("lat", v);
    /// }
    /// assert!(m.percentile("lat", 0.99).unwrap() <= 100.0);
    /// assert!(m.percentile("lat", 0.5).unwrap() >= 1.0);
    /// ```
    pub fn percentile(&self, name: &str, q: f64) -> Option<f64> {
        self.histograms.get(name)?.percentile(q)
    }

    /// The histogram `name` (`None` if never observed).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Sets gauge `name` to its current `value` (last write wins within
    /// one `Metrics`). Gauges are instantaneous levels — queue depth,
    /// backlog width — snapshotted by the telemetry sampler, unlike
    /// series which append every write.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = value;
        } else {
            self.gauges.insert(name.to_owned(), value);
        }
    }

    /// Current value of gauge `name` (`None` if never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All gauge names (sorted), symmetric with
    /// [`counter_names`](Self::counter_names) and
    /// [`histogram_names`](Self::histogram_names).
    pub fn gauge_names(&self) -> Vec<&str> {
        self.gauges.keys().map(|s| s.as_str()).collect()
    }

    /// All histogram names (sorted).
    pub fn histogram_names(&self) -> Vec<&str> {
        self.histograms.keys().map(|s| s.as_str()).collect()
    }

    /// All series names (sorted).
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }

    /// All counter names (sorted).
    pub fn counter_names(&self) -> Vec<&str> {
        self.counters.keys().map(|s| s.as_str()).collect()
    }

    /// Sums samples of `name` into fixed windows of `window_us`, returning
    /// `(window_start_us, sum)` — the building block for the paper's
    /// events-per-second plots.
    pub fn windowed_sum(&self, name: &str, window_us: u64) -> Vec<(u64, f64)> {
        let mut out: BTreeMap<u64, f64> = BTreeMap::new();
        for &(t, v) in self.series(name) {
            *out.entry((t / window_us) * window_us).or_insert(0.0) += v;
        }
        out.into_iter().collect()
    }

    /// Mean of all samples of `name` (`None` when empty).
    pub fn mean(&self, name: &str) -> Option<f64> {
        let s = self.series(name);
        if s.is_empty() {
            return None;
        }
        Some(s.iter().map(|&(_, v)| v).sum::<f64>() / s.len() as f64)
    }

    /// Standard deviation of all samples of `name`.
    pub fn std_dev(&self, name: &str) -> Option<f64> {
        let s = self.series(name);
        if s.len() < 2 {
            return None;
        }
        let mean = self.mean(name)?;
        let var = s.iter().map(|&(_, v)| (v - mean).powi(2)).sum::<f64>() / s.len() as f64;
        Some(var.sqrt())
    }

    /// Folds `other` into `self`: counters add, histograms merge,
    /// series samples append (then re-sort by time so windowed
    /// reductions stay correct), and gauges **add**. The threaded
    /// runtime keeps one `Metrics` per worker shard and merges them —
    /// always in worker-index order — into the run-wide view, both on
    /// shutdown and for every mid-run snapshot.
    ///
    /// Gauge addition is the union-preserving choice: shards publish
    /// disjoint per-entity names (`telemetry.queue_depth.w0`,
    /// `telemetry.doubt_width_ticks.n3.p1`, …), so the merged value of
    /// each name equals the single shard that owns it, and unsuffixed
    /// aggregates computed by the sampler stay sums over entities.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, samples) in &other.series {
            let s = self.series.entry(name.clone()).or_default();
            s.extend_from_slice(samples);
            s.sort_by_key(|&(t, _)| t);
        }
        for (name, delta) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0.0) += delta;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0.0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_sum_buckets_by_window_start() {
        let mut m = Metrics::default();
        m.record(100, "x", 1.0);
        m.record(900, "x", 2.0);
        m.record(1_100, "x", 5.0);
        let w = m.windowed_sum("x", 1_000);
        assert_eq!(w, vec![(0, 3.0), (1_000, 5.0)]);
    }

    #[test]
    fn mean_and_std_dev() {
        let mut m = Metrics::default();
        for (i, v) in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().enumerate() {
            m.record(i as u64, "d", *v);
        }
        assert_eq!(m.mean("d"), Some(5.0));
        assert!((m.std_dev("d").unwrap() - 2.0).abs() < 1e-9);
        assert_eq!(m.mean("missing"), None);
    }

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::default();
        m.count("c", 1.0);
        m.count("c", 2.5);
        assert_eq!(m.counter("c"), 3.5);
        assert_eq!(m.counter("other"), 0.0);
    }

    #[test]
    fn names_listed_sorted() {
        let mut m = Metrics::default();
        m.record(0, "b", 0.0);
        m.record(0, "a", 0.0);
        m.count("z", 1.0);
        m.observe("h", 1.0);
        m.set_gauge("g2", 1.0);
        m.set_gauge("g1", 2.0);
        assert_eq!(m.series_names(), vec!["a", "b"]);
        assert_eq!(m.counter_names(), vec!["z"]);
        assert_eq!(m.histogram_names(), vec!["h"]);
        assert_eq!(m.gauge_names(), vec!["g1", "g2"]);
    }

    #[test]
    fn gauges_last_write_wins_and_merge_adds() {
        let mut m = Metrics::default();
        assert_eq!(m.gauge("depth"), None);
        m.set_gauge("depth", 3.0);
        m.set_gauge("depth", 7.0);
        assert_eq!(m.gauge("depth"), Some(7.0));

        // Shards own disjoint names; merge is additive, so each merged
        // name keeps its owning shard's value and overlapping names sum.
        let mut w0 = Metrics::default();
        w0.set_gauge("q.w0", 4.0);
        w0.set_gauge("shared", 1.0);
        let mut w1 = Metrics::default();
        w1.set_gauge("q.w1", 9.0);
        w1.set_gauge("shared", 2.0);
        let mut merged = Metrics::default();
        merged.merge(&w0);
        merged.merge(&w1);
        assert_eq!(merged.gauge("q.w0"), Some(4.0));
        assert_eq!(merged.gauge("q.w1"), Some(9.0));
        assert_eq!(merged.gauge("shared"), Some(3.0));
    }

    /// Registry completeness: `names::all()` lists every constant
    /// exactly once, and the telemetry family is present so samplers and
    /// exporters can trust the registry.
    #[test]
    fn name_registry_complete_and_unique() {
        let all = names::all();
        assert!(
            all.len() >= 40,
            "registry unexpectedly small: {}",
            all.len()
        );
        let mut seen = std::collections::BTreeSet::new();
        for name in all {
            assert!(seen.insert(*name), "duplicate registered name {name}");
        }
        for telemetry in [
            names::TELEMETRY_QUEUE_DEPTH,
            names::TELEMETRY_WORKER_UTILIZATION,
            names::TELEMETRY_SERVICE_TIME_US,
            names::TELEMETRY_DOUBT_WIDTH_TICKS,
            names::TELEMETRY_CATCHUP_BACKLOG_TICKS,
            names::TELEMETRY_CATCHUP_STREAMS,
            names::TELEMETRY_SHB_SLAB_BYTES,
            names::TELEMETRY_SHB_BYTES_PER_IDLE_SUB,
        ] {
            assert!(seen.contains(telemetry), "{telemetry} not registered");
            assert!(telemetry.starts_with("telemetry."));
        }
        // The tail-forensics family (PR 9) must be registered so the
        // doctor-coverage test in gryphon-harness can see it.
        for forensics in [
            names::STORAGE_COMMIT_SYNC_WAIT_LEADER_US,
            names::STORAGE_COMMIT_SYNC_WAIT_FOLLOWER_US,
            names::NET_QUEUE_WAIT_US,
            names::FORENSICS_EXEMPLAR_DROPPED,
            names::FORENSICS_INTERVAL_DROPPED,
        ] {
            assert!(seen.contains(forensics), "{forensics} not registered");
        }
        // The population-observability family (PR 10) must be
        // registered so the Prometheus exporter and the doctor-coverage
        // test can see it.
        for sketch in [
            names::FORENSICS_TOPK_DROPPED,
            names::SKETCH_LAG_POPULATION,
            names::SKETCH_LAG_P50_US,
            names::SKETCH_LAG_P99_US,
            names::SKETCH_LAG_MAX_US,
            names::SKETCH_LAG_SKEW,
            names::SKETCH_DOMINANCE_SHARE,
            names::HEALTH_ALERT_LAG_SKEW,
            names::HEALTH_ALERT_ENTITY_DOMINANCE,
        ] {
            assert!(seen.contains(sketch), "{sketch} not registered");
        }
        assert!(
            names::SKETCH_LAG_SKEW.starts_with("sketch.")
                && names::SKETCH_DOMINANCE_SHARE.starts_with("sketch."),
            "sketch gauges live under the sketch. family"
        );
    }

    #[test]
    fn histogram_empty_and_single() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.min(), None);

        let mut h = Histogram::default();
        h.observe(42.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Some(42.0));
        assert_eq!(h.max(), Some(42.0));
        // One sample: every quantile clamps to it exactly.
        assert_eq!(h.percentile(0.0), Some(42.0));
        assert_eq!(h.percentile(0.5), Some(42.0));
        assert_eq!(h.percentile(1.0), Some(42.0));
    }

    #[test]
    fn histogram_percentiles_bounded_error() {
        let mut h = Histogram::default();
        for i in 1..=1_000u32 {
            h.observe(i as f64);
        }
        assert_eq!(h.count(), 1_000);
        assert!((h.mean().unwrap() - 500.5).abs() < 1e-9);
        for (q, exact) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let est = h.percentile(q).unwrap();
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.20, "p{q}: est {est} vs exact {exact} (rel {rel})");
        }
        assert_eq!(h.percentile(1.0), Some(1_000.0));
    }

    #[test]
    fn histogram_handles_zero_negative_and_huge() {
        let mut h = Histogram::default();
        h.observe(0.0);
        h.observe(-5.0); // clamped to 0
        h.observe(1e18);
        h.observe(f64::NAN); // ignored
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(0.0));
        assert_eq!(h.max(), Some(1e18));
        let p = h.percentile(0.5).unwrap();
        assert!((0.0..=1e18).contains(&p));
    }

    #[test]
    fn merge_combines_counters_series_histograms() {
        let mut a = Metrics::default();
        a.count("c", 1.0);
        a.record(5, "s", 1.0);
        a.observe("h", 10.0);
        let mut b = Metrics::default();
        b.count("c", 2.0);
        b.count("only_b", 4.0);
        b.record(2, "s", 2.0);
        b.observe("h", 30.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3.0);
        assert_eq!(a.counter("only_b"), 4.0);
        // Series samples interleave in time order after the merge.
        assert_eq!(a.series("s"), &[(2, 2.0), (5, 1.0)]);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(10.0));
        assert_eq!(h.max(), Some(30.0));
        assert_eq!(h.sum(), 40.0);
    }

    #[test]
    fn histogram_merge_with_empty_is_identity() {
        let mut h = Histogram::default();
        h.observe(7.0);
        let before = (h.count(), h.min(), h.max());
        h.merge(&Histogram::default());
        assert_eq!((h.count(), h.min(), h.max()), before);
        let mut empty = Histogram::default();
        empty.merge(&h);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.percentile(0.5), Some(7.0));
    }

    /// Merging shard-local histograms must be indistinguishable from one
    /// histogram observing the combined stream: identical count, sum,
    /// min/max and bucketed percentiles (merge is bucket-wise addition,
    /// so the bucketed distributions are *equal*, not just close). This
    /// is the property the threaded runtime's stop()-time merge relies
    /// on.
    #[test]
    fn histogram_shard_merge_agrees_with_combined_stream() {
        // Deterministic pseudo-random-ish sample spread over 6 decades.
        let samples: Vec<f64> = (0..1_000u64)
            .map(|i| ((i * 2_654_435_761) % 1_000_000) as f64 / 7.0 + 0.01)
            .collect();
        let mut combined = Histogram::default();
        let mut shards = [
            Histogram::default(),
            Histogram::default(),
            Histogram::default(),
            Histogram::default(),
        ];
        for (i, &v) in samples.iter().enumerate() {
            combined.observe(v);
            shards[i % shards.len()].observe(v);
        }
        let mut merged = Histogram::default();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged.count(), combined.count());
        // Sums are f64 accumulations in different orders, so they agree
        // to rounding error but not bit-for-bit.
        let rel = (merged.sum() - combined.sum()).abs() / combined.sum();
        assert!(rel < 1e-12, "sum diverged: rel err {rel:e}");
        assert_eq!(merged.min(), combined.min());
        assert_eq!(merged.max(), combined.max());
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            assert_eq!(
                merged.percentile(q),
                combined.percentile(q),
                "bucketed p{q} must be bit-identical after merge"
            );
        }
    }

    /// Merge edge cases around emptiness: empty∪empty stays empty,
    /// single∪empty keeps the single sample exact, and a merge never
    /// invents min/max outside the observed samples.
    #[test]
    fn histogram_merge_empty_and_single_edge_cases() {
        let mut e = Histogram::default();
        e.merge(&Histogram::default());
        assert_eq!(e.count(), 0);
        assert_eq!(e.percentile(0.5), None);
        assert_eq!(e.min(), None);
        assert_eq!(e.max(), None);

        let mut single = Histogram::default();
        single.observe(3.5);
        single.merge(&Histogram::default());
        assert_eq!(single.count(), 1);
        assert_eq!(single.percentile(0.0), Some(3.5));
        assert_eq!(single.percentile(1.0), Some(3.5));

        let mut other = Histogram::default();
        other.observe(8.0);
        single.merge(&other);
        assert_eq!(single.count(), 2);
        assert_eq!(single.min(), Some(3.5));
        assert_eq!(single.max(), Some(8.0));
        let p50 = single.percentile(0.5).unwrap();
        assert!((3.5..=8.0).contains(&p50));
    }

    /// `delta_since` isolates the samples observed between two
    /// snapshots: the window count/sum are exact, the window quantiles
    /// carry the usual bucket error, and min/max stay inside both the
    /// delta buckets and the cumulative bounds.
    #[test]
    fn histogram_delta_since_isolates_window() {
        let mut h = Histogram::default();
        for v in [10.0, 20.0, 30.0] {
            h.observe(v);
        }
        let snap = h.clone();
        for v in [1_000.0, 2_000.0, 4_000.0, 8_000.0] {
            h.observe(v);
        }
        let w = h.delta_since(&snap);
        assert_eq!(w.count(), 4);
        assert!((w.sum() - 15_000.0).abs() < 1e-9);
        // The window contains only the second batch; its quantiles must
        // land in that batch's range (±bucket error), far above the
        // first batch.
        let p50 = w.percentile(0.5).unwrap();
        assert!(
            (800.0..=2_500.0).contains(&p50),
            "window p50 {p50} should reflect only the new samples"
        );
        assert!(w.min().unwrap() >= 100.0, "old samples leaked into window");
        assert!(w.max().unwrap() <= h.max().unwrap());

        // No new samples: empty window.
        let empty = h.delta_since(&h.clone());
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.percentile(0.5), None);
    }

    #[test]
    fn histogram_delta_since_from_empty_equals_self() {
        let mut h = Histogram::default();
        for v in [5.0, 50.0, 500.0] {
            h.observe(v);
        }
        let w = h.delta_since(&Histogram::default());
        assert_eq!(w.count(), h.count());
        assert_eq!(w.sum(), h.sum());
        for q in [0.0, 0.5, 0.99, 1.0] {
            let a = w.percentile(q).unwrap();
            let b = h.percentile(q).unwrap();
            let rel = (a - b).abs() / b.max(1e-12);
            assert!(rel < 0.25, "p{q}: window {a} vs cumulative {b}");
        }
    }

    #[test]
    fn metrics_percentile_roundtrip() {
        let mut m = Metrics::default();
        assert_eq!(m.percentile("lat", 0.5), None);
        for v in [10.0, 20.0, 30.0, 40.0] {
            m.observe("lat", v);
        }
        let p50 = m.percentile("lat", 0.5).unwrap();
        assert!((10.0..=40.0).contains(&p50));
        assert_eq!(m.histogram("lat").unwrap().count(), 4);
    }
}
