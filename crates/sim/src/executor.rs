//! Runtime-agnostic execution of [`Node`] state machines.
//!
//! Gryphon's protocol logic is written once as synchronous [`Node`]
//! state machines and run on two very different engines: the
//! deterministic virtual-time simulator ([`Sim`], this crate) for the
//! paper's experiments, and the threaded wall-clock runtime
//! (`gryphon-net`) for throughput benchmarks. The [`Executor`] trait is
//! the narrow waist the two share, so harness code that only needs
//! "spawn nodes, wire them, push messages, let time pass, read a
//! counter" can be written once and pointed at either engine.
//!
//! The trait is deliberately smaller than either engine's full API:
//! link shaping, crash injection, trace rings and typed handles stay on
//! the concrete types. `advance_us` means *virtual* time on the
//! simulator (exact) and *wall-clock* time on the threaded runtime
//! (approximate) — generic code must treat it as "at least this much
//! progress", which is all the protocols require.

use crate::runtime::{LinkParams, Node, Sim};
use gryphon_types::{NetMsg, NodeId};

/// A runtime that can host [`Node`]s and drive them with messages and
/// time. Implemented by [`Sim`] (virtual time, deterministic) and by
/// `gryphon_net::NetExecutor` (threads, wall clock).
pub trait Executor {
    /// Registers `node` under `name` and returns its id. Ids are
    /// assigned in registration order on both engines, so wiring code
    /// can rely on them matching across runtimes.
    fn spawn(&mut self, name: &str, node: Box<dyn Node>) -> NodeId;

    /// Declares a bidirectional link between `a` and `b` with the
    /// engine's default characteristics. The threaded runtime is fully
    /// connected already and treats this as a no-op.
    fn connect(&mut self, a: NodeId, b: NodeId);

    /// Delivers `msg` to `to` from the control pseudo-node.
    fn inject(&mut self, to: NodeId, msg: NetMsg);

    /// Lets at least `us` microseconds of runtime-time elapse (virtual
    /// on the simulator, wall-clock on threads).
    fn advance_us(&mut self, us: u64);

    /// Current value of counter `name` across the whole runtime
    /// (summed over shards on the threaded engine).
    fn counter(&self, name: &str) -> f64;
}

impl Executor for Sim {
    fn spawn(&mut self, name: &str, node: Box<dyn Node>) -> NodeId {
        self.add_node(name, node)
    }

    fn connect(&mut self, a: NodeId, b: NodeId) {
        Sim::connect(self, a, b, LinkParams::default().latency_us);
    }

    fn inject(&mut self, to: NodeId, msg: NetMsg) {
        let now = self.now_us();
        self.inject_ctrl(now, to, msg);
    }

    fn advance_us(&mut self, us: u64) {
        let until = self.now_us().saturating_add(us);
        self.run_until(until);
    }

    fn counter(&self, name: &str) -> f64 {
        self.metrics().counter(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{NodeCtx, TimerKey};
    use gryphon_types::{SubInterestMsg, SubscriberId, SubscriptionSpec};

    /// Counts every message and sets a timer that counts once more.
    struct Counting;

    impl Node for Counting {
        fn on_message(&mut self, _from: NodeId, _msg: NetMsg, ctx: &mut dyn NodeCtx) {
            ctx.count("seen", 1.0);
            ctx.set_timer(500, TimerKey(7));
        }
        fn on_timer(&mut self, _key: TimerKey, ctx: &mut dyn NodeCtx) {
            ctx.count("fired", 1.0);
        }
    }

    fn interest() -> NetMsg {
        NetMsg::SubInterest(SubInterestMsg {
            subs: vec![(SubscriberId(1), SubscriptionSpec::new("class = 1"))],
            version: 1,
        })
    }

    /// Generic driver usable against any engine — the shape harnesses
    /// and benches reuse.
    fn drive(ex: &mut dyn Executor) -> (f64, f64) {
        let a = ex.spawn("a", Box::new(Counting));
        let b = ex.spawn("b", Box::new(Counting));
        ex.connect(a, b);
        ex.inject(a, interest());
        ex.inject(b, interest());
        ex.advance_us(10_000);
        (ex.counter("seen"), ex.counter("fired"))
    }

    #[test]
    fn sim_implements_executor() {
        let mut sim = Sim::new(7);
        let (seen, fired) = drive(&mut sim);
        assert_eq!(seen, 2.0);
        assert_eq!(fired, 2.0);
    }
}
