//! The discrete-event scheduler, links, timers and fault injection.

use crate::Metrics;
use gryphon_types::{NetMsg, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Sender id used for messages injected by the harness (not a real node).
pub const CONTROL_NODE: NodeId = NodeId(u32::MAX);

/// Opaque timer identifier chosen by the node that sets it.
///
/// Timers cannot be cancelled; nodes ignore stale keys instead (the usual
/// state-machine idiom — a timer's meaning is checked against current
/// state when it fires).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerKey(pub u64);

/// Context handed to a node during a callback.
///
/// Everything a node can do to the outside world goes through this trait,
/// which is what lets identical broker code run under the deterministic
/// simulator and the threaded runtime.
pub trait NodeCtx {
    /// Current virtual (or wall) time in microseconds.
    fn now_us(&self) -> u64;
    /// This node's id.
    fn me(&self) -> NodeId;
    /// Sends `msg` to `to` over the configured link (silently dropped if
    /// no link exists — mirrors a closed TCP connection).
    fn send(&mut self, to: NodeId, msg: NetMsg);
    /// Fires [`Node::on_timer`] with `key` after `delay_us`.
    fn set_timer(&mut self, delay_us: u64, key: TimerKey);
    /// Deterministic per-run RNG.
    fn rng(&mut self) -> &mut SmallRng;
    /// Accounts `cost_us` of CPU work to this node (drives the paper's
    /// CPU-idle plots; does not delay message processing).
    fn work(&mut self, cost_us: u64);
    /// Appends a sample to a metrics series at the current time.
    fn record(&mut self, series: &str, value: f64);
    /// Bumps a metrics counter.
    fn count(&mut self, counter: &str, delta: f64);
    /// Records one sample into a metrics histogram (see
    /// [`crate::metrics::names`] for the registry). Default: discarded.
    fn observe(&mut self, _name: &str, _value: f64) {}
    /// Sets a metrics gauge to its current level (telemetry samplers
    /// snapshot gauges each window; see DESIGN.md §13). Publishers that
    /// exist per entity append a shard suffix (`.n<node>`, `.p<pubend>`,
    /// `.w<worker>`) to the registered base name. Default: discarded.
    fn gauge(&mut self, _name: &str, _value: f64) {}
    /// Emits a structured trace event attributed to this node. Default:
    /// discarded. Instrumentation sites should go through
    /// [`trace_event!`](crate::trace_event) rather than calling this
    /// directly, so the `trace` feature can compile the overhead out.
    fn trace(&mut self, _event: crate::trace::TraceEvent) {}
    /// Records a busy interval of `dur_us` ending *now* on this node's
    /// timeline track, tagged with a forensics kind (one of the
    /// `KIND_*` constants in [`crate::forensics`]). Pure observation for
    /// the exported Perfetto trace — never affects scheduling. Default:
    /// discarded (also when the contention profiler is disarmed).
    fn interval(&mut self, _kind: &'static str, _dur_us: u64) {}
    /// Attributes `weight` to `entity` on a population-sketch dimension
    /// (one of the `DIM_*` constants in [`crate::sketch`]): per-entity
    /// heavy-hitter accounting in O(K) memory (DESIGN.md §18). Pure
    /// observation — the armed sketch drains into `topk.ndjson` each
    /// sampler window and never affects scheduling. Default: discarded
    /// (also when the sketch is disarmed).
    fn attribute(&mut self, _dim: &'static str, _entity: u64, _weight: u64) {}
}

/// A state machine hosted by a runtime.
pub trait Node: Send {
    /// Called once when the runtime starts (or when the node is added to
    /// an already-running sim). Establish initial timers here.
    fn on_start(&mut self, _ctx: &mut dyn NodeCtx) {}
    /// A message arrived.
    fn on_message(&mut self, from: NodeId, msg: NetMsg, ctx: &mut dyn NodeCtx);
    /// A timer set via [`NodeCtx::set_timer`] fired.
    fn on_timer(&mut self, key: TimerKey, ctx: &mut dyn NodeCtx);
    /// The runtime restarted this node after a crash: volatile state is
    /// still in `self` and must be discarded/rebuilt from persistent
    /// storage by this method.
    fn on_restart(&mut self, _ctx: &mut dyn NodeCtx) {}
}

/// Link properties for one direction.
#[derive(Debug, Clone, Copy)]
pub struct LinkParams {
    /// Base propagation + processing latency.
    pub latency_us: u64,
    /// Uniform random extra latency in `[0, jitter_us]` (FIFO order is
    /// still enforced).
    pub jitter_us: u64,
    /// Probability in `[0, 1]` that a message is dropped.
    pub loss: f64,
    /// Serialization bandwidth; `None` = infinite. Messages queue behind
    /// one another ([`gryphon_types::NetMsg::size_hint`] bytes each), which
    /// is what bounds catchup burst rates after an SHB failure.
    pub bytes_per_sec: Option<u64>,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            latency_us: 1_000,
            jitter_us: 0,
            loss: 0.0,
            bytes_per_sec: None,
        }
    }
}

#[derive(Debug)]
enum EventKind {
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: NetMsg,
    },
    Timer {
        node: NodeId,
        key: TimerKey,
    },
    Crash {
        node: NodeId,
    },
    Restart {
        node: NodeId,
    },
}

struct Scheduled {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct NodeSlot {
    node: Option<Box<dyn Node>>,
    name: String,
    up: bool,
    busy_us: u64,
    type_id: Option<std::any::TypeId>,
}

/// Armed tail-forensics state: the interval ring collecting per-node
/// busy/commit/fsync slices between sampler windows. The exemplar
/// reservoir itself lives inside the lineage assembler (where the stage
/// histograms are observed); this only holds the profiler side.
struct ForensicsState {
    config: crate::forensics::ForensicsConfig,
    intervals: crate::forensics::IntervalRing,
}

/// The deterministic simulator. See the [crate docs](crate) for an
/// overview and example.
pub struct Sim {
    now: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled>>,
    nodes: Vec<NodeSlot>,
    links: HashMap<(NodeId, NodeId), LinkParams>,
    /// FIFO enforcement: last scheduled arrival per directed link.
    last_arrival: HashMap<(NodeId, NodeId), u64>,
    /// Bandwidth serialization: when each directed link frees up.
    link_busy_until: HashMap<(NodeId, NodeId), u64>,
    rng: SmallRng,
    metrics: Metrics,
    #[cfg(feature = "trace")]
    trace: crate::trace::TraceBuffer,
    #[cfg(feature = "trace")]
    watchdogs: crate::trace::Watchdogs,
    #[cfg(feature = "trace")]
    lineage: crate::lineage::Lineage,
    /// Directory for flight-recorder post-mortems (`None` = disabled).
    #[cfg(feature = "trace")]
    flight_dir: Option<std::path::PathBuf>,
    #[cfg(feature = "trace")]
    flight_dumps: u32,
    /// Panic on delivery-ledger violations (default: armed under
    /// `cfg(debug_assertions)`, like the watchdogs).
    #[cfg(feature = "trace")]
    ledger_panic: bool,
    /// Fixed CPU charge per delivered message/timer (µs).
    pub base_event_cost_us: u64,
    events_processed: u64,
    /// Windowed telemetry sampler (`None` = disabled). Fires between
    /// scheduler events, never through them, so enabling it cannot
    /// perturb protocol ordering.
    telemetry: Option<crate::telemetry::Sampler>,
    /// Online health engine (`None` = disabled). Evaluated right after
    /// each telemetry sample against the timeline so far; a pure
    /// observer like the sampler itself.
    health: Option<crate::health::HealthEngine>,
    /// Tail-forensics profiler (`None` = disarmed). Collects bounded
    /// busy-interval records and (with the `trace` feature) arms the
    /// lineage exemplar reservoir; both drain into the telemetry
    /// timeline each sampler window. Pure observer: arming it leaves
    /// traces and deliveries bit-identical.
    forensics: Option<ForensicsState>,
    /// Population sketch (`None` = disarmed): per-entity top-K
    /// attribution and the subscriber lag spectrum, fed through
    /// [`NodeCtx::attribute`] and drained into the telemetry timeline
    /// each sampler window. Pure observer like the sampler itself.
    sketch: Option<crate::sketch::PopulationSketch>,
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now_us", &self.now)
            .field("nodes", &self.nodes.len())
            .field("queued", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl Sim {
    /// Creates an empty simulation with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            links: HashMap::new(),
            last_arrival: HashMap::new(),
            link_busy_until: HashMap::new(),
            rng: SmallRng::seed_from_u64(seed),
            metrics: Metrics::default(),
            #[cfg(feature = "trace")]
            trace: crate::trace::TraceBuffer::new(),
            #[cfg(feature = "trace")]
            watchdogs: {
                // Deferred panics let the flight recorder dump a
                // post-mortem before the process dies.
                let mut w = crate::trace::Watchdogs::default();
                w.defer_panic = true;
                w
            },
            #[cfg(feature = "trace")]
            lineage: crate::lineage::Lineage::default(),
            #[cfg(feature = "trace")]
            flight_dir: None,
            #[cfg(feature = "trace")]
            flight_dumps: 0,
            #[cfg(feature = "trace")]
            ledger_panic: cfg!(debug_assertions),
            base_event_cost_us: 0,
            events_processed: 0,
            telemetry: None,
            health: None,
            forensics: None,
            sketch: None,
        }
    }

    /// Registers `node` under a human-readable `name`, returning its id.
    /// `on_start` runs at the current virtual time.
    pub fn add_node(&mut self, name: &str, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot {
            node: Some(node),
            name: name.to_owned(),
            up: true,
            busy_us: 0,
            type_id: None,
        });
        self.with_node(id, |node, ctx| node.on_start(ctx));
        id
    }

    /// Creates symmetric links `a ↔ b` with the given one-way latency.
    pub fn connect(&mut self, a: NodeId, b: NodeId, latency_us: u64) {
        let p = LinkParams {
            latency_us,
            ..LinkParams::default()
        };
        self.connect_with(a, b, p);
    }

    /// Creates symmetric links `a ↔ b` with full parameters.
    pub fn connect_with(&mut self, a: NodeId, b: NodeId, params: LinkParams) {
        self.links.insert((a, b), params);
        self.links.insert((b, a), params);
    }

    /// Removes the links between `a` and `b` (partition).
    pub fn disconnect(&mut self, a: NodeId, b: NodeId) {
        self.links.remove(&(a, b));
        self.links.remove(&(b, a));
    }

    /// Injects `msg` for `to` at absolute virtual time `at_us` (no link
    /// traversal), appearing to come from `from`.
    pub fn inject_from(&mut self, at_us: u64, to: NodeId, from: NodeId, msg: NetMsg) {
        self.push(at_us, EventKind::Deliver { to, from, msg });
    }

    /// Injects a control message (sender [`CONTROL_NODE`]).
    pub fn inject(&mut self, at_us: u64, to: NodeId, from: NodeId, msg: NetMsg) {
        // `from` kept for source attribution in tests; CONTROL injection
        // uses `inject_ctrl`.
        self.inject_from(at_us, to, from, msg);
    }

    /// Injects a message whose sender is the harness itself.
    pub fn inject_ctrl(&mut self, at_us: u64, to: NodeId, msg: NetMsg) {
        self.inject_from(at_us, to, CONTROL_NODE, msg);
    }

    /// Schedules a crash of `node` at `at_us` for `duration_us`, after
    /// which the node restarts (volatile state wiped by its
    /// [`Node::on_restart`]). While down, deliveries and timers for the
    /// node are silently dropped.
    pub fn schedule_crash(&mut self, node: NodeId, at_us: u64, duration_us: u64) {
        self.push(at_us, EventKind::Crash { node });
        self.push(at_us + duration_us, EventKind::Restart { node });
    }

    fn push(&mut self, time: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { time, seq, kind }));
    }

    /// Runs until the queue is empty or virtual time would exceed
    /// `until_us`. Returns the number of events processed.
    pub fn run_until(&mut self, until_us: u64) -> u64 {
        let mut n = 0;
        loop {
            let head_time = match self.queue.peek() {
                Some(Reverse(head)) if head.time <= until_us => head.time,
                _ => break,
            };
            // Telemetry samples due strictly before (or at) the next
            // event fire first, reading state as of that virtual moment
            // without touching the queue.
            self.fire_due_samples(head_time);
            let Reverse(ev) = self.queue.pop().expect("peeked");
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            self.dispatch(ev.kind);
            n += 1;
        }
        self.fire_due_samples(until_us);
        self.now = self.now.max(until_us);
        self.events_processed += n;
        n
    }

    /// Runs to quiescence (empty queue). Returns events processed.
    /// Intended for tests; live workloads self-perpetuate via timers, so
    /// use [`Sim::run_until`] there.
    pub fn run_to_quiescence(&mut self) -> u64 {
        let mut n = 0;
        while let Some(Reverse(head)) = self.queue.peek() {
            let head_time = head.time;
            self.fire_due_samples(head_time);
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.now = ev.time;
            self.dispatch(ev.kind);
            n += 1;
        }
        self.events_processed += n;
        n
    }

    /// Enables the windowed telemetry sampler at a fixed virtual-time
    /// `interval_us` (see [`crate::telemetry`]). Each due sample fires
    /// between scheduler events: it snapshots the scheduler's
    /// outstanding-event count as the
    /// [`telemetry.queue_depth`](crate::names::TELEMETRY_QUEUE_DEPTH)
    /// gauge, then lets the sampler read all gauges and counter rates.
    /// Sampling appends only to metrics — traces and deliveries are
    /// bit-identical with the sampler on or off.
    pub fn enable_telemetry(&mut self, interval_us: u64) {
        self.telemetry = Some(crate::telemetry::Sampler::new(interval_us));
    }

    /// The telemetry timeline collected so far (`None` when disabled).
    pub fn telemetry(&self) -> Option<&crate::telemetry::Timeline> {
        self.telemetry.as_ref().map(|s| s.timeline())
    }

    /// Takes the telemetry timeline out of the sim (disabling further
    /// sampling), e.g. to attach it to a report.
    pub fn take_telemetry(&mut self) -> Option<crate::telemetry::Timeline> {
        self.telemetry.take().map(|s| s.into_timeline())
    }

    /// Arms the online health engine over `rules` (see
    /// [`crate::health`]). Requires telemetry to be enabled — the engine
    /// judges the sampler's timeline and is evaluated once per sample
    /// window. Each rule's `health.alert.<rule>` counter is registered
    /// at zero immediately so exports show the armed rule set even when
    /// nothing ever fires. Like the sampler, the engine is a pure
    /// observer: it never touches the event queue, and on a clean run it
    /// emits no trace events at all.
    pub fn enable_health(&mut self, rules: Vec<crate::health::HealthRule>) {
        let engine = crate::health::HealthEngine::new(rules);
        engine.prime(&mut self.metrics);
        self.health = Some(engine);
    }

    /// The armed health engine (`None` when disabled).
    pub fn health(&self) -> Option<&crate::health::HealthEngine> {
        self.health.as_ref()
    }

    /// Arms tail forensics: an exemplar reservoir on the lineage stage
    /// histograms (with the `trace` feature) and a bounded busy-interval
    /// recorder fed by [`Sim::charge`] / [`NodeCtx::interval`]. Both
    /// streams drain into the telemetry timeline once per sampler window
    /// (so telemetry should be enabled too; without it the interval ring
    /// simply fills and evicts). Pure observer — see DESIGN.md §17.
    pub fn enable_forensics(&mut self, cfg: crate::forensics::ForensicsConfig) {
        #[cfg(feature = "trace")]
        self.lineage
            .arm_exemplars(crate::forensics::ExemplarReservoir::new(&cfg));
        self.forensics = Some(ForensicsState {
            intervals: crate::forensics::IntervalRing::new(cfg.interval_capacity),
            config: cfg,
        });
    }

    /// `true` when the tail-forensics profiler is armed.
    pub fn forensics_enabled(&self) -> bool {
        self.forensics.is_some()
    }

    /// The armed forensics configuration (`None` when disarmed).
    pub fn forensics_config(&self) -> Option<&crate::forensics::ForensicsConfig> {
        self.forensics.as_ref().map(|f| &f.config)
    }

    /// Arms the population sketch: per-entity top-K attribution
    /// ([`NodeCtx::attribute`]) plus the subscriber lag spectrum, in
    /// O(K) memory per dimension. Drained into top-K snapshots on the
    /// telemetry timeline once per sampler window (so telemetry should
    /// be enabled too; without it attributions simply accumulate). Pure
    /// observer — see DESIGN.md §18.
    pub fn enable_sketch(&mut self, cfg: crate::sketch::SketchConfig) {
        self.sketch = Some(crate::sketch::PopulationSketch::new(cfg));
    }

    /// `true` when the population sketch is armed.
    pub fn sketch_enabled(&self) -> bool {
        self.sketch.is_some()
    }

    /// The armed sketch configuration (`None` when disarmed).
    pub fn sketch_config(&self) -> Option<crate::sketch::SketchConfig> {
        self.sketch.as_ref().map(|s| s.config())
    }

    /// Fires every telemetry sample due at or before `upto_us`, then
    /// lets the health engine judge each new window.
    fn fire_due_samples(&mut self, upto_us: u64) {
        let Some(mut sampler) = self.telemetry.take() else {
            return;
        };
        let mut health = self.health.take();
        while sampler.next_at_us() <= upto_us {
            let at = sampler.next_at_us();
            self.metrics
                .set_gauge(crate::names::TELEMETRY_QUEUE_DEPTH, self.queue.len() as f64);
            let sketch_out = self.sketch.as_mut().map(|sk| sk.drain(at));
            if let Some((snaps, stats)) = &sketch_out {
                // Gauges land before `sample` so this window's snapshot
                // reflects this window's sweep, mirroring queue depth.
                if let Some(stats) = stats {
                    self.metrics
                        .set_gauge(crate::names::SKETCH_LAG_POPULATION, stats.population as f64);
                    self.metrics
                        .set_gauge(crate::names::SKETCH_LAG_P50_US, stats.p50_us as f64);
                    self.metrics
                        .set_gauge(crate::names::SKETCH_LAG_P99_US, stats.p99_us as f64);
                    self.metrics
                        .set_gauge(crate::names::SKETCH_LAG_MAX_US, stats.max_us as f64);
                    self.metrics
                        .set_gauge(crate::names::SKETCH_LAG_SKEW, stats.skew());
                }
                if let Some(bytes) = snaps.iter().find(|s| s.dim == crate::sketch::DIM_SUB_BYTES) {
                    self.metrics
                        .set_gauge(crate::names::SKETCH_DOMINANCE_SHARE, bytes.alarm_share());
                }
            }
            sampler.sample(at, &self.metrics);
            if let Some(engine) = health.as_mut() {
                for mut alert in engine.evaluate(at, sampler.timeline()) {
                    if let Some((snaps, _)) = &sketch_out {
                        crate::sketch::name_culprit(&mut alert.detail, &alert.series, snaps);
                    }
                    if alert.state == crate::health::AlertState::Firing {
                        self.metrics
                            .count(&format!("health.alert.{}", alert.rule), 1.0);
                    }
                    #[cfg(feature = "trace")]
                    self.push_trace(
                        CONTROL_NODE,
                        crate::trace::TraceEvent::HealthAlert {
                            rule: alert.rule.clone(),
                            series: alert.series.clone(),
                            firing: alert.state == crate::health::AlertState::Firing,
                        },
                    );
                    sampler.timeline_mut().push_alert(alert);
                }
            }
            if let Some((snaps, _)) = sketch_out {
                let mut dropped = 0;
                for snap in snaps {
                    dropped += sampler.timeline_mut().push_topk(snap);
                }
                if dropped > 0 {
                    self.metrics.count(
                        crate::metrics::names::FORENSICS_TOPK_DROPPED,
                        dropped as f64,
                    );
                }
            }
            self.drain_forensics(&mut sampler);
        }
        self.health = health;
        self.telemetry = Some(sampler);
    }

    /// Moves everything the forensics observers collected this window
    /// into the telemetry timeline: tail exemplars (resolved against
    /// their assembled lineage spans) and busy intervals. Drops shed by
    /// the bounded reservoir/ring/timeline are surfaced as the
    /// `forensics.*_dropped` counters.
    fn drain_forensics(&mut self, sampler: &mut crate::telemetry::Sampler) {
        if self.forensics.is_none() {
            return;
        }
        #[cfg(feature = "trace")]
        {
            let mut dropped = 0;
            let drained = match self.lineage.exemplars_mut() {
                Some(r) => {
                    dropped += r.take_dropped();
                    r.drain_sorted()
                }
                None => Vec::new(),
            };
            for s in drained {
                let ex = crate::forensics::Exemplar::resolve(&s, self.lineage.span(s.key));
                dropped += sampler.timeline_mut().push_exemplar(ex);
            }
            if dropped > 0 {
                self.metrics.count(
                    crate::metrics::names::FORENSICS_EXEMPLAR_DROPPED,
                    dropped as f64,
                );
            }
        }
        let Some(f) = self.forensics.as_mut() else {
            return;
        };
        let mut dropped = f.intervals.take_dropped();
        for iv in f.intervals.drain() {
            dropped += sampler.timeline_mut().push_interval(iv);
        }
        if dropped > 0 {
            self.metrics.count(
                crate::metrics::names::FORENSICS_INTERVAL_DROPPED,
                dropped as f64,
            );
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Deliver { to, from, msg } => {
                if !self.slot(to).map(|s| s.up).unwrap_or(false) {
                    return;
                }
                self.charge(to, self.base_event_cost_us);
                self.with_node(to, |node, ctx| node.on_message(from, msg, ctx));
            }
            EventKind::Timer { node, key } => {
                if !self.slot(node).map(|s| s.up).unwrap_or(false) {
                    return;
                }
                self.charge(node, self.base_event_cost_us);
                self.with_node(node, |n, ctx| n.on_timer(key, ctx));
            }
            EventKind::Crash { node } => {
                if let Some(slot) = self.nodes.get_mut(node.0 as usize) {
                    slot.up = false;
                }
            }
            EventKind::Restart { node } => {
                if let Some(slot) = self.nodes.get_mut(node.0 as usize) {
                    slot.up = true;
                }
                // Watchdog delivery state for the node resets here, before
                // `on_restart` rebuilds from persistent storage.
                #[cfg(feature = "trace")]
                self.push_trace(node, crate::trace::TraceEvent::NodeRestarted);
                self.with_node(node, |n, ctx| n.on_restart(ctx));
            }
        }
    }

    fn slot(&self, id: NodeId) -> Option<&NodeSlot> {
        self.nodes.get(id.0 as usize)
    }

    fn charge(&mut self, id: NodeId, cost: u64) {
        if let Some(slot) = self.nodes.get_mut(id.0 as usize) {
            slot.busy_us += cost;
        }
        if cost > 0 {
            self.push_interval(id, crate::forensics::KIND_BUSY, cost);
        }
    }

    /// Records a busy interval of `dur_us` ending at the current virtual
    /// time on `id`'s timeline track (no-op while forensics is
    /// disarmed). Never touches the event queue.
    fn push_interval(&mut self, id: NodeId, kind: &'static str, dur_us: u64) {
        let now = self.now;
        if let Some(f) = self.forensics.as_mut() {
            f.intervals.push(crate::forensics::BusyInterval {
                track: id.0,
                kind,
                start_us: now.saturating_sub(dur_us),
                dur_us,
            });
        }
    }

    fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node, &mut dyn NodeCtx)) {
        let Some(slot) = self.nodes.get_mut(id.0 as usize) else {
            return;
        };
        let Some(mut node) = slot.node.take() else {
            return; // re-entrant dispatch is impossible; defensive
        };
        let mut ctx = SimCtx { sim: self, me: id };
        f(node.as_mut(), &mut ctx);
        self.nodes[id.0 as usize].node = Some(node);
    }

    /// Current virtual time (µs).
    pub fn now_us(&self) -> u64 {
        self.now
    }

    /// Metrics recorded so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics access for the harness (e.g. recording workload
    /// ground truth alongside node-recorded series).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Accumulated CPU work of `node` (µs).
    pub fn busy_us(&self, node: NodeId) -> u64 {
        self.slot(node).map(|s| s.busy_us).unwrap_or(0)
    }

    /// `true` when the node is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.slot(node).map(|s| s.up).unwrap_or(false)
    }

    /// The registered display name of `node`.
    pub fn node_name(&self, node: NodeId) -> &str {
        self.slot(node).map(|s| s.name.as_str()).unwrap_or("?")
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }
}

/// Trace-stream and watchdog access (only with the `trace` feature,
/// which is on by default).
#[cfg(feature = "trace")]
impl Sim {
    fn push_trace(&mut self, node: NodeId, event: crate::trace::TraceEvent) {
        let rec = crate::trace::TraceRecord {
            t_us: self.now,
            node,
            event,
        };
        let wd_before = self.watchdogs.violations();
        let ledger_before = self.lineage.violations();
        self.watchdogs.observe(&rec, &mut self.metrics);
        self.lineage.observe(&rec, &mut self.metrics);
        let wd_hit = self.watchdogs.violations() > wd_before;
        let ledger_hit = self.lineage.violations() > ledger_before;
        if wd_hit || ledger_hit {
            self.flight_dump(&rec, wd_hit);
        }
        let before = self.trace.dropped();
        self.trace.push(rec);
        let evicted = self.trace.dropped() - before;
        if evicted > 0 {
            self.metrics
                .count(crate::metrics::names::TRACE_DROPPED, evicted as f64);
        }
        // Panics were deferred across the dump; raise them now.
        if let Some(detail) = self.watchdogs.take_deferred_panic() {
            panic!("invariant watchdog: {detail}");
        }
        if ledger_hit && self.ledger_panic {
            let detail = self.lineage.last_violation().unwrap_or("?").to_owned();
            panic!("delivery ledger: {detail}");
        }
    }

    /// Writes a post-mortem for the violation just observed on `rec`:
    /// the reason, the offending record, that event's reconstructed
    /// lineage span, a metrics snapshot (Prometheus text) and the tail
    /// of the trace ring. Bounded to [`Self::MAX_FLIGHT_DUMPS`] files
    /// per run; a disabled recorder (`flight_dir == None`) costs one
    /// branch.
    fn flight_dump(&mut self, rec: &crate::trace::TraceRecord, watchdog: bool) {
        const TRACE_TAIL: usize = 256;
        let Some(dir) = self.flight_dir.clone() else {
            return;
        };
        if self.flight_dumps >= Self::MAX_FLIGHT_DUMPS {
            return;
        }
        let seq = self.flight_dumps;
        self.flight_dumps += 1;
        self.metrics
            .count(crate::metrics::names::LINEAGE_FLIGHT_DUMPS, 1.0);
        let reason = if watchdog {
            format!("watchdog: {}", self.watchdogs.last_detail().unwrap_or("?"))
        } else {
            format!("ledger: {}", self.lineage.last_violation().unwrap_or("?"))
        };
        let mut out = String::new();
        out.push_str(&format!(
            "# gryphon flight recorder post-mortem {seq}\n\
             time_us: {}\nnode: {} ({})\nreason: {reason}\n\
             offending_event: {:?}\n\n",
            rec.t_us,
            rec.node,
            self.node_name(rec.node),
            rec.event,
        ));
        out.push_str("## lineage of offending event\n");
        match rec.event.lineage_key() {
            Some(key) => match self.lineage.span(key) {
                Some(span) => out.push_str(&span.render(key)),
                None => out.push_str(&format!("{key}: no span assembled\n")),
            },
            None => out.push_str("(event carries no lineage key)\n"),
        }
        out.push_str("\n## metrics snapshot\n");
        out.push_str(&crate::lineage::prometheus_text(&self.metrics));
        out.push_str(&format!("\n## trace ring tail (last {TRACE_TAIL})\n"));
        let len = self.trace.iter().count();
        for r in self.trace.iter().skip(len.saturating_sub(TRACE_TAIL)) {
            out.push_str(&format!("{} {} {:?}\n", r.t_us, r.node, r.event));
        }
        let path = dir.join(format!("postmortem-{seq}.txt"));
        // Best-effort: a full disk must not mask the original violation.
        let _ = std::fs::create_dir_all(&dir);
        let _ = std::fs::write(&path, out);
    }

    /// The retained trace records, oldest first.
    pub fn trace_records(&self) -> impl Iterator<Item = &crate::trace::TraceRecord> {
        self.trace.iter()
    }

    /// The trace ring buffer (for capacity/drop introspection).
    pub fn trace_buffer(&self) -> &crate::trace::TraceBuffer {
        &self.trace
    }

    /// Resizes the trace ring (`0` retains nothing; watchdogs still run).
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace.set_capacity(capacity);
    }

    /// Arms or disarms panicking on watchdog violations (default:
    /// armed under `cfg(debug_assertions)`).
    pub fn set_watchdog_panic(&mut self, panic_on_violation: bool) {
        self.watchdogs.panic_on_violation = panic_on_violation;
    }

    /// Total invariant violations the watchdogs have flagged.
    pub fn watchdog_violations(&self) -> u64 {
        self.watchdogs.violations()
    }

    /// Feeds a synthetic trace event through the buffer and watchdogs as
    /// if `node` emitted it now — the corruption hook fault-injection
    /// tests use to prove the watchdogs actually bite.
    pub fn inject_trace(&mut self, node: NodeId, event: crate::trace::TraceEvent) {
        self.push_trace(node, event);
    }

    /// Post-mortem files per run the flight recorder will write before
    /// going quiet (a violation storm must not fill the disk).
    pub const MAX_FLIGHT_DUMPS: u32 = 8;

    /// The delivery-lineage assembler/ledger fed by every trace event.
    pub fn lineage(&self) -> &crate::lineage::Lineage {
        &self.lineage
    }

    /// Arms or disarms panicking on delivery-ledger violations
    /// (default: armed under `cfg(debug_assertions)`).
    pub fn set_ledger_panic(&mut self, panic_on_violation: bool) {
        self.ledger_panic = panic_on_violation;
    }

    /// Enables full-audit mode on the ledger (records per-session
    /// delivered sets so [`Sim::ledger_audit`] can compute *missing*
    /// deliveries; only meaningful under match-all filters).
    pub fn set_full_audit(&mut self, on: bool) {
        self.lineage.set_full_audit(on);
    }

    /// Directory where the flight recorder writes post-mortems on any
    /// watchdog or ledger violation (`None` disables it, the default).
    pub fn set_flight_dir(&mut self, dir: Option<std::path::PathBuf>) {
        self.flight_dir = dir;
    }

    /// Post-mortems written so far this run.
    pub fn flight_dumps(&self) -> u32 {
        self.flight_dumps
    }

    /// Exactly-once violations the delivery ledger has flagged.
    pub fn ledger_violations(&self) -> u64 {
        self.lineage.violations()
    }

    /// Offline exactly-once audit over everything observed so far.
    pub fn ledger_audit(&self) -> crate::lineage::LedgerAudit {
        self.lineage.audit()
    }
}

/// Inert stand-ins for the trace/watchdog API when the `trace` feature
/// is disabled, so downstream code compiles identically in both
/// configurations (no records are ever collected, no invariant ever
/// flagged).
#[cfg(not(feature = "trace"))]
impl Sim {
    /// Always empty without the `trace` feature.
    pub fn trace_records(&self) -> impl Iterator<Item = &crate::trace::TraceRecord> {
        std::iter::empty()
    }

    /// No-op without the `trace` feature.
    pub fn set_trace_capacity(&mut self, _capacity: usize) {}

    /// No-op without the `trace` feature.
    pub fn set_watchdog_panic(&mut self, _panic_on_violation: bool) {}

    /// Always zero without the `trace` feature.
    pub fn watchdog_violations(&self) -> u64 {
        0
    }

    /// Dropped without the `trace` feature.
    pub fn inject_trace(&mut self, _node: NodeId, _event: crate::trace::TraceEvent) {}

    /// No-op without the `trace` feature.
    pub fn set_ledger_panic(&mut self, _panic_on_violation: bool) {}

    /// No-op without the `trace` feature.
    pub fn set_full_audit(&mut self, _on: bool) {}

    /// No-op without the `trace` feature.
    pub fn set_flight_dir(&mut self, _dir: Option<std::path::PathBuf>) {}

    /// Always zero without the `trace` feature.
    pub fn flight_dumps(&self) -> u32 {
        0
    }

    /// Always zero without the `trace` feature.
    pub fn ledger_violations(&self) -> u64 {
        0
    }

    /// Always clean without the `trace` feature.
    pub fn ledger_audit(&self) -> crate::lineage::LedgerAudit {
        crate::lineage::LedgerAudit::default()
    }
}

/// Typed handle to a node for harness-side inspection.
///
/// [`Sim::add_node`] erases the concrete type; experiments that need to
/// read a node's state between events (e.g. a client's received-message
/// log) register it through [`Sim::add_typed_node`] and keep the returned
/// [`Handle`], which can borrow the node back from the sim.
pub struct Handle<T> {
    id: NodeId,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Handle<T> {}

impl<T> Handle<T> {
    /// The node id this handle refers to.
    pub fn id(&self) -> NodeId {
        self.id
    }
}

impl<T> std::fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Handle({})", self.id)
    }
}

struct Typed<T>(T);

impl<T: Node + 'static> Node for Typed<T> {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx) {
        self.0.on_start(ctx)
    }
    fn on_message(&mut self, from: NodeId, msg: NetMsg, ctx: &mut dyn NodeCtx) {
        self.0.on_message(from, msg, ctx)
    }
    fn on_timer(&mut self, key: TimerKey, ctx: &mut dyn NodeCtx) {
        self.0.on_timer(key, ctx)
    }
    fn on_restart(&mut self, ctx: &mut dyn NodeCtx) {
        self.0.on_restart(ctx)
    }
}

impl Sim {
    /// Like [`Sim::add_node`] but preserves the concrete type for later
    /// inspection via [`Sim::node`] / [`Sim::node_ref`].
    pub fn add_typed_node<T: Node + 'static>(&mut self, name: &str, node: T) -> Handle<T> {
        let id = self.add_node(name, Box::new(Typed(node)));
        self.nodes[id.0 as usize].type_id = Some(std::any::TypeId::of::<Typed<T>>());
        Handle {
            id,
            _marker: std::marker::PhantomData,
        }
    }

    /// Mutable access to a typed node between events.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not refer to a `T` (impossible when the
    /// handle came from [`Sim::add_typed_node`]) or during dispatch.
    pub fn node<T: Node + 'static>(&mut self, h: Handle<T>) -> &mut T {
        let slot = self
            .nodes
            .get_mut(h.id.0 as usize)
            .expect("handle from this sim");
        assert_eq!(
            slot.type_id,
            Some(std::any::TypeId::of::<Typed<T>>()),
            "handle type mismatch"
        );
        let node = slot.node.as_mut().expect("node() called during dispatch");
        let typed: &mut Typed<T> = unsafe {
            // SAFETY: the TypeId check above proves the concrete type in
            // this slot is exactly Typed<T>, and slots are never replaced.
            &mut *(node.as_mut() as *mut dyn Node as *mut Typed<T>)
        };
        &mut typed.0
    }

    /// Shared access to a typed node between events.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Sim::node`].
    pub fn node_ref<T: Node + 'static>(&self, h: Handle<T>) -> &T {
        let slot = self
            .nodes
            .get(h.id.0 as usize)
            .expect("handle from this sim");
        assert_eq!(
            slot.type_id,
            Some(std::any::TypeId::of::<Typed<T>>()),
            "handle type mismatch"
        );
        let node = slot
            .node
            .as_ref()
            .expect("node_ref() called during dispatch");
        let typed: &Typed<T> = unsafe {
            // SAFETY: as in `node`.
            &*(node.as_ref() as *const dyn Node as *const Typed<T>)
        };
        &typed.0
    }
}

struct SimCtx<'a> {
    sim: &'a mut Sim,
    me: NodeId,
}

impl NodeCtx for SimCtx<'_> {
    fn now_us(&self) -> u64 {
        self.sim.now
    }

    fn me(&self) -> NodeId {
        self.me
    }

    fn send(&mut self, to: NodeId, msg: NetMsg) {
        let Some(&params) = self.sim.links.get(&(self.me, to)) else {
            return; // no link: dropped, like a closed connection
        };
        // Loss models congestion drops on the stream-recovery path.
        // Control traffic (interest, release, client sessions) rides
        // reliable TCP in the modeled system, and the knowledge/curiosity
        // protocol is the part designed to self-heal — so only those two
        // message kinds are subject to loss.
        let lossy_kind = matches!(msg, NetMsg::Knowledge(_) | NetMsg::Curiosity(_));
        if lossy_kind && params.loss > 0.0 && self.sim.rng.gen::<f64>() < params.loss {
            self.sim.metrics.count("net.dropped", 1.0);
            return;
        }
        let jitter = if params.jitter_us > 0 {
            self.sim.rng.gen_range(0..=params.jitter_us)
        } else {
            0
        };
        let key = (self.me, to);
        // Serialization delay: the message occupies the link for
        // size/bandwidth, queueing behind earlier messages.
        let depart = match params.bytes_per_sec {
            Some(bw) if bw > 0 => {
                let busy_until = self.sim.link_busy_until.get(&key).copied().unwrap_or(0);
                let start = self.sim.now.max(busy_until);
                let tx = (msg.size_hint() as u64).saturating_mul(1_000_000) / bw;
                let depart = start + tx;
                self.sim.link_busy_until.insert(key, depart);
                depart
            }
            _ => self.sim.now,
        };
        let arrival = depart + params.latency_us + jitter;
        // FIFO per directed link.
        let last = self.sim.last_arrival.get(&key).copied().unwrap_or(0);
        let arrival = arrival.max(last);
        self.sim.last_arrival.insert(key, arrival);
        self.sim.push(
            arrival,
            EventKind::Deliver {
                to,
                from: self.me,
                msg,
            },
        );
    }

    fn set_timer(&mut self, delay_us: u64, key: TimerKey) {
        let at = self.sim.now + delay_us;
        self.sim.push(at, EventKind::Timer { node: self.me, key });
    }

    fn rng(&mut self) -> &mut SmallRng {
        &mut self.sim.rng
    }

    fn work(&mut self, cost_us: u64) {
        self.sim.charge(self.me, cost_us);
    }

    fn record(&mut self, series: &str, value: f64) {
        let now = self.sim.now;
        self.sim.metrics.record(now, series, value);
    }

    fn count(&mut self, counter: &str, delta: f64) {
        self.sim.metrics.count(counter, delta);
    }

    fn observe(&mut self, name: &str, value: f64) {
        self.sim.metrics.observe(name, value);
    }

    fn gauge(&mut self, name: &str, value: f64) {
        self.sim.metrics.set_gauge(name, value);
    }

    #[cfg(feature = "trace")]
    fn trace(&mut self, event: crate::trace::TraceEvent) {
        self.sim.push_trace(self.me, event);
    }

    fn interval(&mut self, kind: &'static str, dur_us: u64) {
        if dur_us > 0 {
            self.sim.push_interval(self.me, kind, dur_us);
        }
    }

    fn attribute(&mut self, dim: &'static str, entity: u64, weight: u64) {
        if let Some(sketch) = self.sim.sketch.as_mut() {
            sketch.attribute(dim, entity, weight);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gryphon_types::SubInterestMsg;

    fn dummy_msg() -> NetMsg {
        NetMsg::SubInterest(SubInterestMsg {
            subs: vec![],
            version: 0,
        })
    }

    /// A message of the lossy kind (loss only applies to the self-healing
    /// knowledge/curiosity streams; control rides reliable TCP).
    fn lossy_msg() -> NetMsg {
        NetMsg::Knowledge(gryphon_types::KnowledgeMsg {
            pubend: gryphon_types::PubendId(0),
            parts: vec![],
            nack_response: false,
            interest_version: 0,
        })
    }

    /// Records every arrival time; bounces optionally.
    struct Recorder {
        arrivals: Vec<u64>,
        bounce: bool,
    }

    impl Node for Recorder {
        fn on_message(&mut self, from: NodeId, msg: NetMsg, ctx: &mut dyn NodeCtx) {
            self.arrivals.push(ctx.now_us());
            ctx.record("arrival", 1.0);
            ctx.work(10);
            if self.bounce {
                ctx.send(from, msg);
            }
        }
        fn on_timer(&mut self, _: TimerKey, ctx: &mut dyn NodeCtx) {
            self.arrivals.push(ctx.now_us());
        }
    }

    #[test]
    fn link_latency_and_fifo() {
        let mut sim = Sim::new(1);
        let a = sim.add_typed_node(
            "a",
            Recorder {
                arrivals: vec![],
                bounce: false,
            },
        );
        let b = sim.add_typed_node(
            "b",
            Recorder {
                arrivals: vec![],
                bounce: true,
            },
        );
        sim.connect_with(
            a.id(),
            b.id(),
            LinkParams {
                latency_us: 500,
                jitter_us: 400,
                loss: 0.0,
                bytes_per_sec: None,
            },
        );
        // Inject at b as-if from a at t=0,1,2; b bounces each back to a
        // over the jittery link.
        for t in 0..3 {
            sim.inject_from(t, b.id(), a.id(), dummy_msg());
        }
        sim.run_to_quiescence();
        let arr = &sim.node_ref(a).arrivals;
        assert_eq!(arr.len(), 3);
        assert!(
            arr.windows(2).all(|w| w[0] <= w[1]),
            "FIFO violated: {arr:?}"
        );
        assert!(arr[0] >= 500);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node for TimerNode {
            fn on_start(&mut self, ctx: &mut dyn NodeCtx) {
                ctx.set_timer(300, TimerKey(3));
                ctx.set_timer(100, TimerKey(1));
                ctx.set_timer(200, TimerKey(2));
            }
            fn on_message(&mut self, _: NodeId, _: NetMsg, _: &mut dyn NodeCtx) {}
            fn on_timer(&mut self, key: TimerKey, _: &mut dyn NodeCtx) {
                self.fired.push(key.0);
            }
        }
        let mut sim = Sim::new(0);
        let h = sim.add_typed_node("t", TimerNode { fired: vec![] });
        sim.run_until(250);
        assert_eq!(sim.node_ref(h).fired, vec![1, 2]);
        sim.run_to_quiescence();
        assert_eq!(sim.node_ref(h).fired, vec![1, 2, 3]);
    }

    #[test]
    fn crash_drops_messages_and_restart_notifies() {
        struct CrashNode {
            got: u64,
            restarted: bool,
        }
        impl Node for CrashNode {
            fn on_message(&mut self, _: NodeId, _: NetMsg, _: &mut dyn NodeCtx) {
                self.got += 1;
            }
            fn on_timer(&mut self, _: TimerKey, _: &mut dyn NodeCtx) {}
            fn on_restart(&mut self, _: &mut dyn NodeCtx) {
                self.restarted = true;
            }
        }
        let mut sim = Sim::new(0);
        let h = sim.add_typed_node(
            "c",
            CrashNode {
                got: 0,
                restarted: false,
            },
        );
        sim.schedule_crash(h.id(), 100, 1_000);
        sim.inject_ctrl(50, h.id(), dummy_msg()); // before crash: delivered
        sim.inject_ctrl(500, h.id(), dummy_msg()); // during crash: dropped
        sim.inject_ctrl(2_000, h.id(), dummy_msg()); // after restart
        sim.run_to_quiescence();
        let n = sim.node_ref(h);
        assert_eq!(n.got, 2);
        assert!(n.restarted);
        assert!(sim.is_up(h.id()));
    }

    #[test]
    fn loss_drops_stream_messages_only() {
        let mut sim = Sim::new(7);
        let a = sim.add_typed_node(
            "a",
            Recorder {
                arrivals: vec![],
                bounce: false,
            },
        );
        let b = sim.add_typed_node(
            "b",
            Recorder {
                arrivals: vec![],
                bounce: true,
            },
        );
        sim.connect_with(
            a.id(),
            b.id(),
            LinkParams {
                latency_us: 10,
                jitter_us: 0,
                loss: 0.5,
                bytes_per_sec: None,
            },
        );
        for t in 0..100 {
            sim.inject_from(t * 100, b.id(), a.id(), lossy_msg());
        }
        sim.run_to_quiescence();
        let delivered = sim.node_ref(a).arrivals.len();
        assert!(
            delivered > 20 && delivered < 80,
            "loss ~50%, got {delivered}"
        );
        assert_eq!(
            sim.metrics().counter("net.dropped") as usize + delivered,
            100
        );
        // Control traffic is immune (modeled TCP).
        let mut sim = Sim::new(7);
        let a = sim.add_typed_node(
            "a",
            Recorder {
                arrivals: vec![],
                bounce: false,
            },
        );
        let b = sim.add_typed_node(
            "b",
            Recorder {
                arrivals: vec![],
                bounce: true,
            },
        );
        sim.connect_with(
            a.id(),
            b.id(),
            LinkParams {
                latency_us: 10,
                jitter_us: 0,
                loss: 0.5,
                bytes_per_sec: None,
            },
        );
        for t in 0..50 {
            sim.inject_from(t * 100, b.id(), a.id(), dummy_msg());
        }
        sim.run_to_quiescence();
        assert_eq!(
            sim.node_ref(a).arrivals.len(),
            50,
            "control traffic must not drop"
        );
    }

    #[test]
    fn work_accumulates_and_metrics_record() {
        let mut sim = Sim::new(0);
        let a = sim.add_typed_node(
            "a",
            Recorder {
                arrivals: vec![],
                bounce: false,
            },
        );
        sim.inject_ctrl(0, a.id(), dummy_msg());
        sim.inject_ctrl(1, a.id(), dummy_msg());
        sim.run_to_quiescence();
        assert_eq!(sim.busy_us(a.id()), 20);
        assert_eq!(sim.metrics().series("arrival").len(), 2);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        fn run(seed: u64) -> Vec<u64> {
            let mut sim = Sim::new(seed);
            let a = sim.add_typed_node(
                "a",
                Recorder {
                    arrivals: vec![],
                    bounce: false,
                },
            );
            let b = sim.add_typed_node(
                "b",
                Recorder {
                    arrivals: vec![],
                    bounce: true,
                },
            );
            sim.connect_with(
                a.id(),
                b.id(),
                LinkParams {
                    latency_us: 100,
                    jitter_us: 300,
                    loss: 0.1,
                    bytes_per_sec: None,
                },
            );
            for t in 0..50 {
                sim.inject_from(t * 37, b.id(), a.id(), dummy_msg());
            }
            sim.run_to_quiescence();
            sim.node_ref(a).arrivals.clone()
        }
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should differ");
    }

    #[test]
    fn send_without_link_is_dropped() {
        let mut sim = Sim::new(0);
        let a = sim.add_typed_node(
            "a",
            Recorder {
                arrivals: vec![],
                bounce: true,
            },
        );
        let b = sim.add_typed_node(
            "b",
            Recorder {
                arrivals: vec![],
                bounce: false,
            },
        );
        // No link a→b configured.
        sim.inject_ctrl(0, a.id(), dummy_msg()); // a bounces to CONTROL (no link) — dropped
        sim.run_to_quiescence();
        assert!(sim.node_ref(b).arrivals.is_empty());
    }

    #[test]
    fn bandwidth_serializes_messages() {
        let mut sim = Sim::new(0);
        let a = sim.add_typed_node(
            "a",
            Recorder {
                arrivals: vec![],
                bounce: false,
            },
        );
        let b = sim.add_typed_node(
            "b",
            Recorder {
                arrivals: vec![],
                bounce: true,
            },
        );
        sim.connect_with(
            a.id(),
            b.id(),
            LinkParams {
                latency_us: 100,
                jitter_us: 0,
                loss: 0.0,
                bytes_per_sec: Some(64_000), // dummy msg is 16+0 bytes → 250 µs each
            },
        );
        for _ in 0..4 {
            sim.inject_from(0, b.id(), a.id(), dummy_msg());
        }
        sim.run_to_quiescence();
        let arr = &sim.node_ref(a).arrivals;
        assert_eq!(arr.len(), 4);
        // Each back-to-back message departs one transmit-time later.
        let gaps: Vec<u64> = arr.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.iter().all(|&g| g >= 200),
            "serialization gaps: {gaps:?}"
        );
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut sim = Sim::new(0);
        let a = sim.add_typed_node(
            "a",
            Recorder {
                arrivals: vec![],
                bounce: false,
            },
        );
        sim.inject_ctrl(100, a.id(), dummy_msg());
        sim.inject_ctrl(200, a.id(), dummy_msg());
        let n = sim.run_until(150);
        assert_eq!(n, 1);
        assert_eq!(sim.now_us(), 150);
        let n = sim.run_until(250);
        assert_eq!(n, 1);
    }
}
