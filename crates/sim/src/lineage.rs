//! End-to-end delivery lineage: per-event stage spans, latency
//! attribution, the exactly-once delivery ledger, and the Prometheus
//! text exporter.
//!
//! ## Span model
//!
//! Every persistent event is already uniquely named by its
//! [`LineageKey`] `(pubend, timestamp)` — the paper's tick model (§2)
//! means lineage needs **no new wire bytes**. The broker roles emit
//! stage-transition [`TraceEvent`]s at every hop of an event's life:
//!
//! ```text
//! PubendTimestamped → EventLogged → IbForwarded → ShbIngested → Delivered
//!      (birth)          (PHB log)    (per child)    (per SHB)   (per sub)
//! ```
//!
//! The [`Lineage`] assembler folds that stream into per-span anchors and
//! per-stage latency histograms (`lineage.stage.*_us`). Stages are
//! deduplicated *first occurrence wins* — recovery re-forwards and
//! re-ingests legitimately re-emit — except the birth anchor, where the
//! **last** occurrence wins because a PHB crash re-timestamps unlogged
//! publishes. A stage whose predecessor anchor is unknown (span evicted,
//! or a recovery path skipped a hop) counts as `lineage.stage_orphans`
//! instead of polluting a histogram.
//!
//! ## Delivery ledger
//!
//! The ledger audits exactly-once per `(subscriber, pubend, timestamp)`
//! across reconnects — the end-to-end property the paper's three local
//! watchdogs cannot express. [`TraceEvent::SubResumed`] opens a
//! *session* at the broker-computed resume checkpoint; within a session
//! deliveries must be strictly increasing (`lineage.ledger.duplicate`
//! otherwise), must stay above the resume checkpoint
//! (`lineage.ledger.reconnect_duplicate`), and gap messages must never
//! cover ticks beyond the release/L-conversion boundary
//! (`lineage.ledger.gap_beyond_release`). With
//! [`Lineage::set_full_audit`] (tests under match-all filters), the
//! ledger additionally records the full delivered/gap sets so
//! [`Lineage::audit`] can prove **zero missing** deliveries offline.
//!
//! ## Violations
//!
//! [`Lineage::observe`] never panics: it counts, remembers the detail
//! string, and leaves arming to the runtime — the simulator dumps a
//! flight-recorder post-mortem *before* aborting on an armed violation.

use crate::forensics::ExemplarReservoir;
use crate::metrics::names;
use crate::trace::{DeliveryPath, TraceEvent, TraceRecord};
use crate::Metrics;
use gryphon_types::{LineageKey, NodeId, PubendId, SubscriberId, Timestamp};
use std::collections::{BTreeMap, BTreeSet};

/// Default bound on live spans (oldest evicted beyond this).
pub const DEFAULT_MAX_SPANS: usize = 262_144;

/// Virtual-µs anchors of one event's life, keyed by [`LineageKey`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Span {
    /// Pubend timestamping time (last occurrence wins — a PHB crash
    /// re-timestamps unlogged publishes).
    pub birth_us: Option<u64>,
    /// Durable PHB log time.
    pub log_us: Option<u64>,
    /// First downstream forward by an IB.
    pub forward_us: Option<u64>,
    /// First ingest time per SHB node.
    pub ingest_us: BTreeMap<NodeId, u64>,
    /// Deliveries of this event across all subscribers.
    pub deliveries: u64,
}

impl Span {
    /// Whether the span has the full broker-side chain for a delivered
    /// event: birth, durable log, and at least one SHB ingest. (The IB
    /// forward anchor is absent on combined brokers, where the PHB role
    /// hands events to the co-located SHB directly.)
    pub fn chain_complete(&self) -> bool {
        self.birth_us.is_some() && self.log_us.is_some() && !self.ingest_us.is_empty()
    }

    fn merge(&mut self, other: &Span) {
        // Anchors: first-wins across a merge too, except birth where a
        // later (re-timestamping) anchor should already agree because
        // spans are sharded by pubend; keep self's when present.
        if self.birth_us.is_none() {
            self.birth_us = other.birth_us;
        }
        if self.log_us.is_none() {
            self.log_us = other.log_us;
        }
        if self.forward_us.is_none() {
            self.forward_us = other.forward_us;
        }
        for (&n, &t) in &other.ingest_us {
            self.ingest_us.entry(n).or_insert(t);
        }
        self.deliveries += other.deliveries;
    }

    /// Multi-line human rendering for post-mortem dumps.
    pub fn render(&self, key: LineageKey) -> String {
        let fmt = |v: Option<u64>| match v {
            Some(t) => format!("{t} µs"),
            None => "—".to_owned(),
        };
        let ingests = if self.ingest_us.is_empty() {
            "—".to_owned()
        } else {
            self.ingest_us
                .iter()
                .map(|(n, t)| format!("{n}:{t} µs"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "span {key}\n  timestamped: {}\n  logged:      {}\n  forwarded:   {}\n  \
             ingested:    {ingests}\n  deliveries:  {}",
            fmt(self.birth_us),
            fmt(self.log_us),
            fmt(self.forward_us),
            self.deliveries,
        )
    }
}

/// One subscriber×pubend ledger session (broker connection epoch).
#[derive(Debug, Clone, Default, PartialEq)]
struct Session {
    /// Exclusive floor for deliveries in the current session.
    resume: Timestamp,
    /// Last tick delivered (or gap-covered) in the current session.
    cursor: Timestamp,
    /// Lowest resume checkpoint ever seen (full-audit floor).
    audit_floor: Timestamp,
    /// Highest tick ever delivered across sessions.
    max_delivered: Timestamp,
    /// Full-audit only: every tick delivered, across sessions.
    delivered: BTreeSet<Timestamp>,
    /// Full-audit only: gap ranges `(from_exclusive, upto_inclusive]`.
    gaps: Vec<(Timestamp, Timestamp)>,
}

/// Offline audit result; see [`Lineage::audit`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LedgerAudit {
    /// In-session duplicate deliveries observed online.
    pub duplicates: u64,
    /// Deliveries at/below a session resume checkpoint (duplicate
    /// across reconnect) observed online.
    pub reconnect_duplicates: u64,
    /// Gap messages covering ticks beyond the release boundary.
    pub gap_beyond_release: u64,
    /// Full-audit only: logged ticks a subscriber should have seen but
    /// never did (neither delivered nor gap-covered). Zero when full
    /// audit is off.
    pub missing: u64,
}

impl LedgerAudit {
    /// Whether the ledger is entirely clean.
    pub fn is_clean(&self) -> bool {
        self.duplicates == 0
            && self.reconnect_duplicates == 0
            && self.gap_beyond_release == 0
            && self.missing == 0
    }
}

/// The lineage assembler + delivery ledger. Feed it every
/// [`TraceRecord`] (the runtimes do this on emission, before any ring
/// eviction); read back spans, stage histograms (written into the
/// shared [`Metrics`]), and the exactly-once audit.
#[derive(Debug)]
pub struct Lineage {
    spans: BTreeMap<LineageKey, Span>,
    max_spans: usize,
    sessions: BTreeMap<(SubscriberId, PubendId), Session>,
    /// Highest `LConverted` boundary per pubend.
    released: BTreeMap<PubendId, Timestamp>,
    /// Doubt horizon per (SHB node, pubend), for the lag gauge.
    doubt: BTreeMap<(NodeId, PubendId), Timestamp>,
    /// Constream frontier per (SHB node, pubend), for backlog depth.
    constream_to: BTreeMap<(NodeId, PubendId), Timestamp>,
    /// Full-audit only: every durably logged tick per pubend.
    logged: BTreeMap<PubendId, BTreeSet<Timestamp>>,
    full_audit: bool,
    violations: u64,
    duplicates: u64,
    reconnect_duplicates: u64,
    gap_beyond_release: u64,
    last_violation: Option<String>,
    /// Tail-exemplar reservoir (DESIGN.md §17); `None` until armed via
    /// [`Lineage::arm_exemplars`]. Pure observer: arming it changes no
    /// span, ledger, or histogram state.
    exemplars: Option<ExemplarReservoir>,
}

impl Default for Lineage {
    fn default() -> Self {
        Lineage {
            spans: BTreeMap::new(),
            max_spans: DEFAULT_MAX_SPANS,
            sessions: BTreeMap::new(),
            released: BTreeMap::new(),
            doubt: BTreeMap::new(),
            constream_to: BTreeMap::new(),
            logged: BTreeMap::new(),
            full_audit: false,
            violations: 0,
            duplicates: 0,
            reconnect_duplicates: 0,
            gap_beyond_release: 0,
            last_violation: None,
            exemplars: None,
        }
    }
}

/// Deterministic subsampling period (in ticks) for the per-delivery
/// doubt-lag gauge, keeping series growth bounded on long runs.
const LAG_SAMPLE_TICKS: u64 = 32;

impl Lineage {
    /// Enables full-audit mode: record complete delivered/gap sets so
    /// [`Lineage::audit`] can prove zero *missing* deliveries. Only
    /// meaningful under match-all subscriptions (a filtered subscriber
    /// legitimately never sees non-matching ticks); costs memory
    /// proportional to deliveries.
    pub fn set_full_audit(&mut self, on: bool) {
        self.full_audit = on;
    }

    /// Bounds the live-span map (oldest `(pubend, ts)` evicted first,
    /// counted as `lineage.spans_evicted`).
    pub fn set_max_spans(&mut self, max: usize) {
        self.max_spans = max.max(1);
    }

    /// Arms tail-exemplar capture: every stage-histogram observation is
    /// offered to `reservoir`, and samples above its cached tail
    /// quantile survive for the runtime to drain each sampler window.
    pub fn arm_exemplars(&mut self, reservoir: ExemplarReservoir) {
        self.exemplars = Some(reservoir);
    }

    /// The armed exemplar reservoir, for the runtime's window drain.
    pub fn exemplars_mut(&mut self) -> Option<&mut ExemplarReservoir> {
        self.exemplars.as_mut()
    }

    /// Total ledger violations observed online.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Human-readable description of the most recent ledger violation.
    pub fn last_violation(&self) -> Option<&str> {
        self.last_violation.as_deref()
    }

    /// The span assembled for `key`, if still live.
    pub fn span(&self, key: LineageKey) -> Option<&Span> {
        self.spans.get(&key)
    }

    /// All live spans, ordered by `(pubend, ts)`.
    pub fn spans(&self) -> impl Iterator<Item = (&LineageKey, &Span)> {
        self.spans.iter()
    }

    /// Keys of delivered events whose broker-side stage chain is
    /// incomplete (missing birth, log, or ingest anchor) — the
    /// acceptance check "every delivered event has a complete chain".
    pub fn incomplete_delivered(&self) -> Vec<LineageKey> {
        self.spans
            .iter()
            .filter(|(_, s)| s.deliveries > 0 && !s.chain_complete())
            .map(|(&k, _)| k)
            .collect()
    }

    fn violate(&mut self, metrics: &mut Metrics, counter: &'static str, detail: String) {
        self.violations += 1;
        match counter {
            names::LINEAGE_LEDGER_DUPLICATE => self.duplicates += 1,
            names::LINEAGE_LEDGER_RECONNECT_DUPLICATE => self.reconnect_duplicates += 1,
            names::LINEAGE_LEDGER_GAP_BEYOND_RELEASE => self.gap_beyond_release += 1,
            _ => {}
        }
        metrics.count(counter, 1.0);
        self.last_violation = Some(detail);
    }

    /// Observes one stage latency and, when exemplar capture is armed,
    /// offers the sample to the tail reservoir — after the observation,
    /// so the cumulative distribution the threshold derives from
    /// already includes it.
    fn observe_stage(
        &mut self,
        series: &'static str,
        value: f64,
        t: u64,
        key: LineageKey,
        metrics: &mut Metrics,
    ) {
        metrics.observe(series, value);
        if let Some(r) = self.exemplars.as_mut() {
            r.offer(t, series, value, key, metrics);
        }
    }

    fn span_entry(&mut self, key: LineageKey, metrics: &mut Metrics) -> &mut Span {
        if !self.spans.contains_key(&key) && self.spans.len() >= self.max_spans {
            self.spans.pop_first();
            metrics.count(names::LINEAGE_SPANS_EVICTED, 1.0);
        }
        self.spans.entry(key).or_default()
    }

    /// Feeds one record through the assembler and ledger. Histograms,
    /// lag gauges and violation counters land in `metrics`.
    pub fn observe(&mut self, rec: &TraceRecord, metrics: &mut Metrics) {
        let t = rec.t_us;
        match rec.event {
            TraceEvent::PubendTimestamped { pubend, ts } => {
                let span = self.span_entry(LineageKey::new(pubend, ts), metrics);
                // Last wins: a PHB crash re-timestamps unlogged events.
                span.birth_us = Some(t);
            }
            TraceEvent::EventLogged { pubend, ts, .. } => {
                if self.full_audit {
                    self.logged.entry(pubend).or_default().insert(ts);
                }
                let key = LineageKey::new(pubend, ts);
                let span = self.span_entry(key, metrics);
                if span.log_us.is_none() {
                    span.log_us = Some(t);
                    match span.birth_us {
                        Some(b) => self.observe_stage(
                            names::LINEAGE_STAGE_LOG_US,
                            t.saturating_sub(b) as f64,
                            t,
                            key,
                            metrics,
                        ),
                        None => metrics.count(names::LINEAGE_STAGE_ORPHANS, 1.0),
                    }
                }
            }
            TraceEvent::IbForwarded { pubend, ts } => {
                let key = LineageKey::new(pubend, ts);
                let span = self.span_entry(key, metrics);
                if span.forward_us.is_none() {
                    span.forward_us = Some(t);
                    match span.log_us.or(span.birth_us) {
                        Some(a) => self.observe_stage(
                            names::LINEAGE_STAGE_IB_FORWARD_US,
                            t.saturating_sub(a) as f64,
                            t,
                            key,
                            metrics,
                        ),
                        None => metrics.count(names::LINEAGE_STAGE_ORPHANS, 1.0),
                    }
                }
            }
            TraceEvent::ShbIngested { pubend, ts } => {
                let node = rec.node;
                let key = LineageKey::new(pubend, ts);
                let span = self.span_entry(key, metrics);
                if let std::collections::btree_map::Entry::Vacant(e) = span.ingest_us.entry(node) {
                    e.insert(t);
                    match span.forward_us.or(span.log_us).or(span.birth_us) {
                        Some(a) => self.observe_stage(
                            names::LINEAGE_STAGE_SHB_INGEST_US,
                            t.saturating_sub(a) as f64,
                            t,
                            key,
                            metrics,
                        ),
                        None => metrics.count(names::LINEAGE_STAGE_ORPHANS, 1.0),
                    }
                }
            }
            TraceEvent::Delivered {
                pubend,
                ts,
                sub,
                path,
            } => {
                let node = rec.node;
                let key = LineageKey::new(pubend, ts);
                let span = self.span_entry(key, metrics);
                span.deliveries += 1;
                let birth = span.birth_us;
                let ingest = span.ingest_us.get(&node).copied();
                match birth {
                    Some(b) => self.observe_stage(
                        names::LINEAGE_STAGE_DELIVER_US,
                        t.saturating_sub(b) as f64,
                        t,
                        key,
                        metrics,
                    ),
                    None => metrics.count(names::LINEAGE_STAGE_ORPHANS, 1.0),
                }
                if let Some(i) = ingest {
                    let stage = match path {
                        DeliveryPath::Catchup => names::LINEAGE_STAGE_CATCHUP_US,
                        DeliveryPath::Constream => names::LINEAGE_STAGE_CONSTREAM_US,
                    };
                    self.observe_stage(stage, t.saturating_sub(i) as f64, t, key, metrics);
                }
                // Lag gauge: how far behind this SHB's doubt horizon the
                // subscriber runs (deterministically subsampled).
                if ts.0 % LAG_SAMPLE_TICKS == 0 {
                    if let Some(&h) = self.doubt.get(&(node, pubend)) {
                        metrics.record(
                            t,
                            names::LINEAGE_LAG_DOUBT_TICKS,
                            h.0.saturating_sub(ts.0) as f64,
                        );
                    }
                }
                // Ledger: exactly-once within and across sessions.
                let sess = self.sessions.entry((sub, pubend)).or_default();
                sess.max_delivered = sess.max_delivered.max(ts);
                if self.full_audit {
                    sess.delivered.insert(ts);
                }
                if ts <= sess.resume {
                    let (resume, cursor) = (sess.resume, sess.cursor);
                    self.violate(
                        metrics,
                        names::LINEAGE_LEDGER_RECONNECT_DUPLICATE,
                        format!(
                            "duplicate across reconnect: {key} delivered to {sub} at or below \
                             its resume checkpoint {resume} (cursor {cursor})"
                        ),
                    );
                } else if ts <= sess.cursor {
                    let cursor = sess.cursor;
                    self.violate(
                        metrics,
                        names::LINEAGE_LEDGER_DUPLICATE,
                        format!(
                            "duplicate delivery: {key} delivered to {sub} but its session \
                             cursor already reached {cursor}"
                        ),
                    );
                } else {
                    sess.cursor = ts;
                }
            }
            TraceEvent::GapDelivered { pubend, sub, upto } => {
                let released = self.released.get(&pubend).copied();
                let sess = self.sessions.entry((sub, pubend)).or_default();
                let from = sess.cursor;
                if self.full_audit && upto > from {
                    sess.gaps.push((from, upto));
                }
                sess.cursor = sess.cursor.max(upto);
                let beyond = match released {
                    Some(r) => upto > r,
                    None => true,
                };
                if beyond {
                    let bound = released.unwrap_or(Timestamp::ZERO);
                    self.violate(
                        metrics,
                        names::LINEAGE_LEDGER_GAP_BEYOND_RELEASE,
                        format!(
                            "gap beyond release: {sub} told ticks ≤ {upto} on {pubend} are \
                             lost, but L-conversion only reached {bound}"
                        ),
                    );
                }
            }
            TraceEvent::SubResumed { sub, pubend, at } => {
                let sess = self.sessions.entry((sub, pubend)).or_default();
                let first = sess.audit_floor == Timestamp::ZERO
                    && sess.delivered.is_empty()
                    && sess.max_delivered == Timestamp::ZERO
                    && sess.cursor == Timestamp::ZERO;
                sess.resume = at;
                sess.cursor = at;
                if first {
                    sess.audit_floor = at;
                } else {
                    sess.audit_floor = sess.audit_floor.min(at);
                }
            }
            TraceEvent::LConverted { pubend, upto } => {
                let e = self.released.entry(pubend).or_insert(Timestamp::ZERO);
                *e = (*e).max(upto);
            }
            TraceEvent::DoubtAdvanced { pubend, horizon } => {
                self.doubt.insert((rec.node, pubend), horizon);
            }
            TraceEvent::ConstreamGapCheck { pubend, new_to, .. } => {
                self.constream_to.insert((rec.node, pubend), new_to);
            }
            TraceEvent::CatchupStarted { pubend, from, .. } => {
                // Backlog depth the catchup stream must close before it
                // can switch over to the consolidated stream.
                if let Some(&frontier) = self.constream_to.get(&(rec.node, pubend)) {
                    metrics.record(
                        t,
                        names::LINEAGE_LAG_CATCHUP_BACKLOG_TICKS,
                        frontier.0.saturating_sub(from.0) as f64,
                    );
                }
            }
            _ => {}
        }
    }

    /// Offline exactly-once audit. The online duplicate counters are
    /// always exact; `missing` needs [`Lineage::set_full_audit`] and
    /// match-all subscriptions — it reports logged ticks inside a
    /// subscriber's audited window `(first resume, max delivered]` that
    /// were neither delivered nor covered by a gap message.
    pub fn audit(&self) -> LedgerAudit {
        let mut missing = 0u64;
        if self.full_audit {
            for (&(_sub, pubend), sess) in &self.sessions {
                let Some(logged) = self.logged.get(&pubend) else {
                    continue;
                };
                for &ts in logged.range((
                    std::ops::Bound::Excluded(sess.audit_floor),
                    std::ops::Bound::Included(sess.max_delivered),
                )) {
                    if sess.delivered.contains(&ts) {
                        continue;
                    }
                    if sess.gaps.iter().any(|&(f, u)| ts > f && ts <= u) {
                        continue;
                    }
                    missing += 1;
                }
            }
        }
        LedgerAudit {
            duplicates: self.duplicates,
            reconnect_duplicates: self.reconnect_duplicates,
            gap_beyond_release: self.gap_beyond_release,
            missing,
        }
    }

    /// Folds another lineage into `self`. Used by the threaded runtime
    /// to merge per-worker lineage state at stop, **in worker-index
    /// order** so the result is deterministic. Per-pubend sharding means
    /// span and ledger keys are essentially disjoint across workers;
    /// where control-traffic broadcast duplicated a session header, the
    /// owner shard's session (the one that saw deliveries) wins.
    pub fn merge(&mut self, other: &Lineage) {
        for (&k, s) in &other.spans {
            self.spans.entry(k).or_default().merge(s);
        }
        for (&k, sess) in &other.sessions {
            match self.sessions.get_mut(&k) {
                None => {
                    self.sessions.insert(k, sess.clone());
                }
                Some(mine) => {
                    // Owner shard (larger cursor/max_delivered) wins the
                    // cursor state; audit sets union.
                    if (sess.max_delivered, sess.cursor) > (mine.max_delivered, mine.cursor) {
                        mine.resume = sess.resume;
                        mine.cursor = sess.cursor;
                        mine.max_delivered = sess.max_delivered;
                    }
                    mine.audit_floor = mine.audit_floor.min(sess.audit_floor);
                    mine.delivered.extend(sess.delivered.iter().copied());
                    mine.gaps.extend_from_slice(&sess.gaps);
                }
            }
        }
        for (&p, &r) in &other.released {
            let e = self.released.entry(p).or_insert(Timestamp::ZERO);
            *e = (*e).max(r);
        }
        for (&k, &h) in &other.doubt {
            let e = self.doubt.entry(k).or_insert(Timestamp::ZERO);
            *e = (*e).max(h);
        }
        for (&k, &c) in &other.constream_to {
            let e = self.constream_to.entry(k).or_insert(Timestamp::ZERO);
            *e = (*e).max(c);
        }
        for (&p, set) in &other.logged {
            self.logged
                .entry(p)
                .or_default()
                .extend(set.iter().copied());
        }
        match (self.exemplars.as_mut(), other.exemplars.as_ref()) {
            (Some(mine), Some(theirs)) => mine.absorb(theirs),
            (None, Some(theirs)) => self.exemplars = Some(theirs.clone()),
            _ => {}
        }
        self.full_audit |= other.full_audit;
        self.violations += other.violations;
        self.duplicates += other.duplicates;
        self.reconnect_duplicates += other.reconnect_duplicates;
        self.gap_beyond_release += other.gap_beyond_release;
        if self.last_violation.is_none() {
            self.last_violation = other.last_violation.clone();
        }
    }
}

/// Sanitizes a metric name into the Prometheus name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn prom_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_owned()
    } else if v > 0.0 {
        "+Inf".to_owned()
    } else {
        "-Inf".to_owned()
    }
}

/// Renders a [`Metrics`] snapshot in the Prometheus text exposition
/// format: counters as `counter`, gauges as `gauge`, histograms as
/// `summary` (quantile series plus `_sum`/`_count`), series as `gauge`
/// holding the last sample. Names are sanitized (`.` → `_`); output is
/// sorted by name within each kind, so snapshots diff cleanly.
pub fn prometheus_text(metrics: &Metrics) -> String {
    let mut out = String::new();
    for name in metrics.counter_names() {
        let pn = prom_name(name);
        out.push_str(&format!("# TYPE {pn} counter\n"));
        out.push_str(&format!("{pn} {}\n", prom_num(metrics.counter(name))));
    }
    for name in metrics.gauge_names() {
        let pn = prom_name(name);
        out.push_str(&format!("# TYPE {pn} gauge\n"));
        out.push_str(&format!(
            "{pn} {}\n",
            prom_num(metrics.gauge(name).unwrap_or(0.0))
        ));
    }
    for name in metrics.histogram_names() {
        let Some(h) = metrics.histogram(name) else {
            continue;
        };
        let pn = prom_name(name);
        out.push_str(&format!("# TYPE {pn} summary\n"));
        for q in [0.5, 0.95, 0.99] {
            if let Some(v) = h.percentile(q) {
                out.push_str(&format!("{pn}{{quantile=\"{q}\"}} {}\n", prom_num(v)));
            }
        }
        out.push_str(&format!("{pn}_sum {}\n", prom_num(h.sum())));
        out.push_str(&format!("{pn}_count {}\n", h.count()));
    }
    for name in metrics.series_names() {
        let Some(&(_, last)) = metrics.series(name).last() else {
            continue;
        };
        let pn = prom_name(name);
        out.push_str(&format!("# TYPE {pn} gauge\n"));
        out.push_str(&format!("{pn} {}\n", prom_num(last)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PHB: NodeId = NodeId(1);
    const IB: NodeId = NodeId(2);
    const SHB: NodeId = NodeId(3);
    const P: PubendId = PubendId(0);
    const S: SubscriberId = SubscriberId(7);

    fn rec(t_us: u64, node: NodeId, event: TraceEvent) -> TraceRecord {
        TraceRecord { t_us, node, event }
    }

    /// Drives one event through every stage and checks anchors, the
    /// stage histograms and the ledger cursor.
    #[test]
    fn full_chain_assembles_and_attributes_latency() {
        let mut lin = Lineage::default();
        let mut m = Metrics::default();
        let ts = Timestamp(5);
        lin.observe(
            &rec(100, PHB, TraceEvent::PubendTimestamped { pubend: P, ts }),
            &mut m,
        );
        lin.observe(
            &rec(
                400,
                PHB,
                TraceEvent::EventLogged {
                    pubend: P,
                    ts,
                    bytes: 64,
                },
            ),
            &mut m,
        );
        lin.observe(
            &rec(600, IB, TraceEvent::IbForwarded { pubend: P, ts }),
            &mut m,
        );
        lin.observe(
            &rec(900, SHB, TraceEvent::ShbIngested { pubend: P, ts }),
            &mut m,
        );
        lin.observe(
            &rec(
                1500,
                SHB,
                TraceEvent::Delivered {
                    pubend: P,
                    ts,
                    sub: S,
                    path: DeliveryPath::Constream,
                },
            ),
            &mut m,
        );
        let span = lin.span(LineageKey::new(P, ts)).unwrap();
        assert!(span.chain_complete());
        assert_eq!(span.deliveries, 1);
        assert_eq!(
            m.histogram(names::LINEAGE_STAGE_LOG_US).unwrap().sum(),
            300.0
        );
        assert_eq!(
            m.histogram(names::LINEAGE_STAGE_IB_FORWARD_US)
                .unwrap()
                .sum(),
            200.0
        );
        assert_eq!(
            m.histogram(names::LINEAGE_STAGE_SHB_INGEST_US)
                .unwrap()
                .sum(),
            300.0
        );
        assert_eq!(
            m.histogram(names::LINEAGE_STAGE_CONSTREAM_US)
                .unwrap()
                .sum(),
            600.0
        );
        assert_eq!(
            m.histogram(names::LINEAGE_STAGE_DELIVER_US).unwrap().sum(),
            1400.0
        );
        assert_eq!(lin.violations(), 0);
        assert!(lin.incomplete_delivered().is_empty());
        assert!(span
            .render(LineageKey::new(P, ts))
            .contains("deliveries:  1"));
    }

    /// Stage re-emissions (recovery re-forward / re-ingest) keep the
    /// first anchor; a delivery without its ingest anchor counts as an
    /// orphan rather than a bogus histogram sample.
    #[test]
    fn dedup_first_wins_and_orphans_counted() {
        let mut lin = Lineage::default();
        let mut m = Metrics::default();
        let ts = Timestamp(9);
        lin.observe(
            &rec(10, IB, TraceEvent::IbForwarded { pubend: P, ts }),
            &mut m,
        );
        // No birth/log anchor yet: the forward is an orphan.
        assert_eq!(m.counter(names::LINEAGE_STAGE_ORPHANS), 1.0);
        lin.observe(
            &rec(50, IB, TraceEvent::IbForwarded { pubend: P, ts }),
            &mut m,
        );
        assert_eq!(
            lin.span(LineageKey::new(P, ts)).unwrap().forward_us,
            Some(10),
            "first occurrence wins"
        );
        // Delivery with no span anchors at all: orphaned end-to-end.
        lin.observe(
            &rec(
                99,
                SHB,
                TraceEvent::Delivered {
                    pubend: P,
                    ts: Timestamp(1000), // different span
                    sub: S,
                    path: DeliveryPath::Catchup,
                },
            ),
            &mut m,
        );
        assert_eq!(m.counter(names::LINEAGE_STAGE_ORPHANS), 2.0);
        assert_eq!(
            lin.incomplete_delivered(),
            vec![LineageKey::new(P, Timestamp(1000))]
        );
    }

    /// The ledger: in-session monotone deliveries are clean; a repeat is
    /// a duplicate; after a SubResumed at a lower checkpoint, redelivery
    /// above the checkpoint is clean but at/below it is a
    /// reconnect-duplicate.
    #[test]
    fn ledger_flags_duplicates_within_and_across_sessions() {
        let mut lin = Lineage::default();
        let mut m = Metrics::default();
        let deliver = |ts: u64| TraceEvent::Delivered {
            pubend: P,
            ts: Timestamp(ts),
            sub: S,
            path: DeliveryPath::Constream,
        };
        lin.observe(
            &rec(
                1,
                SHB,
                TraceEvent::SubResumed {
                    sub: S,
                    pubend: P,
                    at: Timestamp(0),
                },
            ),
            &mut m,
        );
        lin.observe(&rec(2, SHB, deliver(1)), &mut m);
        lin.observe(&rec(3, SHB, deliver(2)), &mut m);
        assert_eq!(lin.violations(), 0);
        lin.observe(&rec(4, SHB, deliver(2)), &mut m); // in-session dup
        assert_eq!(lin.violations(), 1);
        assert_eq!(m.counter(names::LINEAGE_LEDGER_DUPLICATE), 1.0);
        assert!(lin.last_violation().unwrap().contains("duplicate delivery"));
        // Reconnect from checkpoint t1: redelivering t2 is legitimate...
        lin.observe(
            &rec(
                5,
                SHB,
                TraceEvent::SubResumed {
                    sub: S,
                    pubend: P,
                    at: Timestamp(1),
                },
            ),
            &mut m,
        );
        lin.observe(&rec(6, SHB, deliver(2)), &mut m);
        assert_eq!(lin.violations(), 1);
        // ...but t1 itself (≤ the checkpoint) is a reconnect-duplicate.
        lin.observe(
            &rec(
                7,
                SHB,
                TraceEvent::SubResumed {
                    sub: S,
                    pubend: P,
                    at: Timestamp(1),
                },
            ),
            &mut m,
        );
        lin.observe(&rec(8, SHB, deliver(1)), &mut m);
        assert_eq!(lin.violations(), 2);
        assert_eq!(m.counter(names::LINEAGE_LEDGER_RECONNECT_DUPLICATE), 1.0);
        let audit = lin.audit();
        assert_eq!(audit.duplicates, 1);
        assert_eq!(audit.reconnect_duplicates, 1);
        assert!(!audit.is_clean());
    }

    /// Gap messages must stay at or below the L-conversion boundary.
    #[test]
    fn gap_beyond_release_boundary_is_flagged() {
        let mut lin = Lineage::default();
        let mut m = Metrics::default();
        lin.observe(
            &rec(
                1,
                IB,
                TraceEvent::LConverted {
                    pubend: P,
                    upto: Timestamp(10),
                },
            ),
            &mut m,
        );
        lin.observe(
            &rec(
                2,
                SHB,
                TraceEvent::GapDelivered {
                    pubend: P,
                    sub: S,
                    upto: Timestamp(10),
                },
            ),
            &mut m,
        );
        assert_eq!(lin.violations(), 0, "gap within the released range");
        lin.observe(
            &rec(
                3,
                SHB,
                TraceEvent::GapDelivered {
                    pubend: P,
                    sub: S,
                    upto: Timestamp(25),
                },
            ),
            &mut m,
        );
        assert_eq!(lin.violations(), 1);
        assert_eq!(m.counter(names::LINEAGE_LEDGER_GAP_BEYOND_RELEASE), 1.0);
    }

    /// Full audit: a logged tick inside the audited window that was
    /// neither delivered nor gap-covered is missing; gap-covered ticks
    /// are not.
    #[test]
    fn full_audit_detects_missing_deliveries() {
        let mut lin = Lineage::default();
        lin.set_full_audit(true);
        let mut m = Metrics::default();
        let log = |ts: u64| TraceEvent::EventLogged {
            pubend: P,
            ts: Timestamp(ts),
            bytes: 1,
        };
        let deliver = |ts: u64| TraceEvent::Delivered {
            pubend: P,
            ts: Timestamp(ts),
            sub: S,
            path: DeliveryPath::Catchup,
        };
        for t in 1..=5u64 {
            lin.observe(&rec(t, PHB, log(t)), &mut m);
        }
        lin.observe(
            &rec(
                10,
                SHB,
                TraceEvent::SubResumed {
                    sub: S,
                    pubend: P,
                    at: Timestamp(0),
                },
            ),
            &mut m,
        );
        lin.observe(&rec(11, SHB, deliver(1)), &mut m);
        lin.observe(&rec(12, SHB, deliver(2)), &mut m);
        // tick 3 skipped silently; tick 4 covered by a gap; tick 5 delivered.
        lin.observe(&rec(13, SHB, deliver(4)), &mut m);
        let mut lin2 = Lineage::default();
        lin2.set_full_audit(true);
        // Build the clean variant in a fresh ledger: 3 skipped, 4 gapped.
        for t in 1..=5u64 {
            lin2.observe(&rec(t, PHB, log(t)), &mut m);
        }
        lin2.observe(
            &rec(
                10,
                SHB,
                TraceEvent::SubResumed {
                    sub: S,
                    pubend: P,
                    at: Timestamp(0),
                },
            ),
            &mut m,
        );
        lin2.observe(&rec(11, SHB, deliver(1)), &mut m);
        lin2.observe(&rec(12, SHB, deliver(2)), &mut m);
        lin2.observe(
            &rec(
                13,
                IB,
                TraceEvent::LConverted {
                    pubend: P,
                    upto: Timestamp(4),
                },
            ),
            &mut m,
        );
        lin2.observe(
            &rec(
                14,
                SHB,
                TraceEvent::GapDelivered {
                    pubend: P,
                    sub: S,
                    upto: Timestamp(4),
                },
            ),
            &mut m,
        );
        lin2.observe(&rec(15, SHB, deliver(5)), &mut m);
        assert_eq!(lin2.violations(), 0);
        assert_eq!(
            lin2.audit().missing,
            0,
            "gap-covered ticks are accounted for"
        );

        // The first ledger delivered 1,2 then jumped to 4 with no gap:
        // tick 3 is missing from the audited window (floor 0, max 4].
        assert_eq!(lin.audit().missing, 1);
    }

    /// Merging per-worker lineages (disjoint pubend shards plus a
    /// broadcast-duplicated session header) equals observing the
    /// combined stream.
    #[test]
    fn merge_agrees_with_combined_observation() {
        let p1 = PubendId(1);
        let mk_events = |p: PubendId, base: u64| {
            vec![
                rec(
                    base,
                    PHB,
                    TraceEvent::PubendTimestamped {
                        pubend: p,
                        ts: Timestamp(1),
                    },
                ),
                rec(
                    base + 10,
                    PHB,
                    TraceEvent::EventLogged {
                        pubend: p,
                        ts: Timestamp(1),
                        bytes: 8,
                    },
                ),
                rec(
                    base + 20,
                    SHB,
                    TraceEvent::ShbIngested {
                        pubend: p,
                        ts: Timestamp(1),
                    },
                ),
                rec(
                    base + 25,
                    SHB,
                    TraceEvent::SubResumed {
                        sub: S,
                        pubend: p,
                        at: Timestamp(0),
                    },
                ),
                rec(
                    base + 30,
                    SHB,
                    TraceEvent::Delivered {
                        pubend: p,
                        ts: Timestamp(1),
                        sub: S,
                        path: DeliveryPath::Constream,
                    },
                ),
            ]
        };
        let mut combined = Lineage::default();
        let mut m = Metrics::default();
        for e in mk_events(P, 100).into_iter().chain(mk_events(p1, 200)) {
            combined.observe(&e, &mut m);
        }
        let mut w0 = Lineage::default();
        let mut w1 = Lineage::default();
        let mut m0 = Metrics::default();
        for e in mk_events(P, 100) {
            w0.observe(&e, &mut m0);
        }
        // Broadcast-duplicated session header on the non-owner shard.
        w1.observe(
            &rec(
                205,
                SHB,
                TraceEvent::SubResumed {
                    sub: S,
                    pubend: P,
                    at: Timestamp(0),
                },
            ),
            &mut m0,
        );
        for e in mk_events(p1, 200) {
            w1.observe(&e, &mut m0);
        }
        let mut merged = Lineage::default();
        merged.merge(&w0);
        merged.merge(&w1);
        assert_eq!(merged.violations(), 0);
        assert_eq!(merged.spans.len(), combined.spans.len());
        for (k, s) in combined.spans() {
            assert_eq!(merged.span(*k), Some(s), "span {k}");
        }
        assert_eq!(merged.audit(), combined.audit());
    }

    /// Span eviction keeps the map bounded, deterministically dropping
    /// the oldest key.
    #[test]
    fn span_eviction_is_bounded_and_deterministic() {
        let mut lin = Lineage::default();
        lin.set_max_spans(2);
        let mut m = Metrics::default();
        for ts in 1..=4u64 {
            lin.observe(
                &rec(
                    ts,
                    PHB,
                    TraceEvent::PubendTimestamped {
                        pubend: P,
                        ts: Timestamp(ts),
                    },
                ),
                &mut m,
            );
        }
        assert_eq!(lin.spans.len(), 2);
        assert_eq!(m.counter(names::LINEAGE_SPANS_EVICTED), 2.0);
        let keys: Vec<Timestamp> = lin.spans().map(|(k, _)| k.ts).collect();
        assert_eq!(
            keys,
            vec![Timestamp(3), Timestamp(4)],
            "oldest evicted first"
        );
    }

    #[test]
    fn prometheus_text_renders_all_kinds() {
        let mut m = Metrics::default();
        m.count("shb.constream_delivered", 10.0);
        for v in [5.0, 10.0, 15.0] {
            m.observe("lineage.stage.deliver_us", v);
        }
        m.record(1_000, "lineage.lag.doubt_horizon_ticks", 4.0);
        m.set_gauge("telemetry.queue_depth", 17.0);
        let text = prometheus_text(&m);
        assert!(text.contains("# TYPE shb_constream_delivered counter\n"));
        assert!(text.contains("shb_constream_delivered 10\n"));
        assert!(text.contains("# TYPE telemetry_queue_depth gauge\n"));
        assert!(text.contains("telemetry_queue_depth 17\n"));
        assert!(text.contains("# TYPE lineage_stage_deliver_us summary\n"));
        assert!(text.contains("lineage_stage_deliver_us{quantile=\"0.5\"}"));
        assert!(text.contains("lineage_stage_deliver_us_sum 30\n"));
        assert!(text.contains("lineage_stage_deliver_us_count 3\n"));
        assert!(text.contains("# TYPE lineage_lag_doubt_horizon_ticks gauge\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.split_once(' ').expect("name value");
            let bare = name.split('{').next().unwrap();
            assert!(bare
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
            assert!(value.parse::<f64>().is_ok(), "value parses: {line}");
        }
    }
}
