//! Deterministic discrete-event runtime for the Gryphon reproduction.
//!
//! The paper's experiments run a broker overlay for hundreds of seconds
//! and inject an SHB crash; reproducing those *time series* reliably on a
//! laptop requires virtual time. Every broker and client in this
//! workspace is a synchronous state machine implementing [`Node`]; this
//! crate drives those machines with:
//!
//! * a virtual clock (microseconds) and a seeded RNG — identical seeds
//!   produce identical runs, so every failure-injection experiment is
//!   replayable;
//! * FIFO links with configurable latency, jitter and loss (TCP in the
//!   paper; FIFO per link is all the protocols require);
//! * timers, node crash/restart injection, per-node CPU accounting (for
//!   the paper's "% CPU idle" plots) and a metrics recorder.
//!
//! The same [`Node`] impls also run on real threads (`gryphon-net`) for
//! wall-clock benchmarks.
//!
//! # Observability
//!
//! With the default `trace` feature, the runtime also collects a bounded
//! ring of structured [`trace::TraceEvent`]s emitted by nodes (via the
//! [`trace_event!`] macro), feeds them through the protocol-invariant
//! [`trace::Watchdogs`], and supports fixed-bucket [`Histogram`]s with
//! [`Metrics::percentile`]. Building with `--no-default-features`
//! compiles the instrumentation out of every hot path.
//!
//! # Examples
//!
//! ```
//! use gryphon_sim::{Node, NodeCtx, Sim, TimerKey};
//! use gryphon_types::{NetMsg, NodeId};
//!
//! struct Echo;
//! impl Node for Echo {
//!     fn on_message(&mut self, from: NodeId, msg: NetMsg, ctx: &mut dyn NodeCtx) {
//!         ctx.record("echoed", 1.0);
//!         ctx.send(from, msg); // bounce it back
//!     }
//!     fn on_timer(&mut self, _: TimerKey, _: &mut dyn NodeCtx) {}
//! }
//!
//! let mut sim = Sim::new(42);
//! let echo = sim.add_node("echo", Box::new(Echo));
//! let probe = sim.add_node("probe", Box::new(Echo));
//! sim.connect(echo, probe, 1_000); // 1 ms links both ways
//! sim.inject(0, probe, echo, NetMsg::SubInterest(gryphon_types::SubInterestMsg { subs: vec![], version: 0 }));
//! sim.run_until(10_000);
//! assert!(sim.metrics().series("echoed").len() >= 2); // ping-pongs until time runs out
//! ```

mod executor;
pub mod forensics;
pub mod health;
pub mod lineage;
mod metrics;
mod runtime;
pub mod sketch;
pub mod telemetry;
pub mod trace;

pub use executor::Executor;
pub use forensics::{BusyInterval, Exemplar, ExemplarReservoir, ForensicsConfig, IntervalRing};
pub use health::{default_rules, AlertRecord, AlertState, HealthEngine, HealthRule, RuleKind};
pub use lineage::{LedgerAudit, Lineage, Span};
pub use metrics::{names, Histogram, Metrics};
pub use runtime::{Handle, LinkParams, Node, NodeCtx, Sim, TimerKey, CONTROL_NODE};
pub use sketch::{
    LagSpectrum, PopulationSketch, SketchConfig, SpaceSaving, SpectrumStats, TopKEntry,
    TopKSnapshot,
};
pub use trace::{DeliveryPath, Severity, TraceBuffer, TraceEvent, TraceRecord, Watchdogs};
