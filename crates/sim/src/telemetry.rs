//! Time-resolved telemetry: windowed sampling of gauges and counter
//! rates into a deterministic in-memory timeline (DESIGN.md §13).
//!
//! End-of-run snapshots (metrics, lineage, Prometheus dumps) cannot
//! show the paper's *dynamics* — doubt-horizon width, catchup backlog
//! and queue depth all spike around failures and drain afterwards. The
//! [`Sampler`] closes that gap: on a fixed interval (virtual time under
//! [`Sim`](crate::Sim), wall time under `gryphon-net`) it snapshots
//! every registered gauge and converts every counter into a per-window
//! rate, appending to a [`Timeline`] that exports as ndjson, CSV, or an
//! ASCII sparkline block.
//!
//! Sampling never feeds back into the run: the simulator fires samples
//! between scheduler events without enqueueing anything, so traces and
//! deliveries stay bit-identical with the sampler on or off (the
//! `golden_determinism` suite asserts this).
//!
//! # Shard suffixes and aggregates
//!
//! Gauge publishers that exist per entity append a shard suffix to the
//! registered base name: `.w<i>` per worker, `.n<i>` per node, `.p<i>`
//! per pubend (possibly chained, e.g.
//! `telemetry.doubt_width_ticks.n3.p1`). The sampler records each
//! suffixed series verbatim *and* derives the unsuffixed base series as
//! the sum over shards, so `telemetry.catchup_backlog_ticks` is always
//! present as the run-wide backlog no matter how many SHBs publish it.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::forensics::{intern_kind, BusyInterval, Exemplar};
use crate::health::{AlertRecord, AlertState};
use crate::metrics::{Histogram, Metrics};
use crate::sketch::{intern_dim, TopKEntry, TopKSnapshot};

/// Default bound on resolved tail exemplars a timeline retains (oldest
/// evicted first; see [`Timeline::push_exemplar`]). Overridable at
/// runtime via [`TimelineCaps`].
pub const TIMELINE_EXEMPLAR_CAP: usize = 4_096;

/// Default bound on busy intervals a timeline retains (oldest evicted
/// first; see [`Timeline::push_interval`]). Overridable at runtime via
/// [`TimelineCaps`].
pub const TIMELINE_INTERVAL_CAP: usize = 131_072;

/// Default bound on top-K snapshots a timeline retains (oldest evicted
/// first; see [`Timeline::push_topk`]). Overridable at runtime via
/// [`TimelineCaps`].
pub const TIMELINE_TOPK_CAP: usize = 8_192;

/// Environment variable overriding the timeline retention caps, e.g.
/// `GRYPHON_TIMELINE_CAPS=exemplars=1024,intervals=65536,topks=512`
/// (any subset; unnamed caps keep their compiled defaults).
pub const TIMELINE_CAPS_ENV: &str = "GRYPHON_TIMELINE_CAPS";

/// Runtime-configurable retention bounds for the timeline's forensics
/// streams. The compiled `TIMELINE_*_CAP` constants are the defaults;
/// deployments tune them per run via [`TIMELINE_CAPS_ENV`] or topology
/// defaults without recompiling. Caps only bound observer-side
/// retention, so overriding them cannot perturb a run (the
/// `golden_determinism` suite pins this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineCaps {
    /// Bound on resolved tail exemplars (oldest evicted first).
    pub exemplars: usize,
    /// Bound on busy intervals (oldest evicted first).
    pub intervals: usize,
    /// Bound on top-K snapshots (oldest evicted first).
    pub topks: usize,
}

impl Default for TimelineCaps {
    fn default() -> TimelineCaps {
        TimelineCaps {
            exemplars: TIMELINE_EXEMPLAR_CAP,
            intervals: TIMELINE_INTERVAL_CAP,
            topks: TIMELINE_TOPK_CAP,
        }
    }
}

impl TimelineCaps {
    /// Parses a `key=value,key=value` override string (keys:
    /// `exemplars`, `intervals`, `topks`; any subset, each clamped to
    /// ≥ 1). Unknown keys and malformed values are errors so a typo in
    /// an env override fails loudly instead of silently keeping the
    /// default.
    pub fn parse(s: &str) -> Result<TimelineCaps, String> {
        let mut caps = TimelineCaps::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("timeline caps: missing '=' in {part:?}"))?;
            let n: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("timeline caps: bad value in {part:?}"))?;
            let n = n.max(1);
            match key.trim() {
                "exemplars" => caps.exemplars = n,
                "intervals" => caps.intervals = n,
                "topks" => caps.topks = n,
                other => return Err(format!("timeline caps: unknown key {other:?}")),
            }
        }
        Ok(caps)
    }

    /// The caps in effect for new timelines: [`TIMELINE_CAPS_ENV`] when
    /// set and well-formed, otherwise the compiled defaults (a
    /// malformed override is reported on stderr once per call rather
    /// than silently shrinking retention).
    pub fn resolved() -> TimelineCaps {
        match std::env::var(TIMELINE_CAPS_ENV) {
            Ok(s) => match TimelineCaps::parse(&s) {
                Ok(caps) => caps,
                Err(e) => {
                    eprintln!("ignoring {TIMELINE_CAPS_ENV}: {e}");
                    TimelineCaps::default()
                }
            },
            Err(_) => TimelineCaps::default(),
        }
    }
}

/// A deterministic in-memory time series store: one sample vector per
/// series name, ordered by sample time, plus the structured health
/// alerts raised while the timeline was collected (kept separate from
/// the sample series so sample exports stay pure), plus the forensics
/// streams (tail exemplars and busy intervals, DESIGN.md §17) — also
/// separate, so `to_ndjson`/`to_csv` stay sample-only.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    interval_us: u64,
    caps: TimelineCaps,
    series: BTreeMap<String, Vec<(u64, f64)>>,
    alerts: Vec<AlertRecord>,
    exemplars: std::collections::VecDeque<Exemplar>,
    intervals: std::collections::VecDeque<BusyInterval>,
    topks: std::collections::VecDeque<TopKSnapshot>,
}

impl Timeline {
    /// An empty timeline tagged with its sampling interval, bounded by
    /// the process-resolved retention caps ([`TimelineCaps::resolved`]).
    pub fn new(interval_us: u64) -> Timeline {
        Timeline::with_caps(interval_us, TimelineCaps::resolved())
    }

    /// An empty timeline with explicit retention caps (tests and
    /// topology defaults; [`Timeline::new`] resolves them from the
    /// environment).
    pub fn with_caps(interval_us: u64, caps: TimelineCaps) -> Timeline {
        Timeline {
            interval_us,
            caps,
            series: BTreeMap::new(),
            alerts: Vec::new(),
            exemplars: std::collections::VecDeque::new(),
            intervals: std::collections::VecDeque::new(),
            topks: std::collections::VecDeque::new(),
        }
    }

    /// The retention caps in effect for this timeline.
    pub fn caps(&self) -> TimelineCaps {
        self.caps
    }

    /// Replaces the retention caps (topology defaults apply theirs
    /// after construction); an over-cap backlog is trimmed oldest-first
    /// on the next push.
    pub fn set_caps(&mut self, caps: TimelineCaps) {
        self.caps = caps;
    }

    /// The sampling interval this timeline was collected at.
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// Appends a `(t_us, value)` sample to `name`.
    pub fn record(&mut self, t_us: u64, name: &str, value: f64) {
        self.series
            .entry(name.to_owned())
            .or_default()
            .push((t_us, value));
    }

    /// All series names (sorted).
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }

    /// The samples of series `name` (empty if never recorded).
    pub fn series(&self, name: &str) -> &[(u64, f64)] {
        self.series.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Appends a structured health-alert transition. Alerts live next
    /// to — not inside — the sample series: `to_ndjson`/`to_csv` stay
    /// sample-only and alerts export via
    /// [`alerts_ndjson`](Timeline::alerts_ndjson).
    pub fn push_alert(&mut self, alert: AlertRecord) {
        self.alerts.push(alert);
    }

    /// The health-alert transitions recorded so far, in time order.
    pub fn alerts(&self) -> &[AlertRecord] {
        &self.alerts
    }

    /// Appends a resolved tail exemplar, evicting the oldest past the
    /// exemplar cap; returns the number evicted (0 or 1) so the runtime
    /// can count it into `forensics.exemplar_dropped`.
    pub fn push_exemplar(&mut self, ex: Exemplar) -> u64 {
        self.exemplars.push_back(ex);
        if self.exemplars.len() > self.caps.exemplars {
            self.exemplars.pop_front();
            1
        } else {
            0
        }
    }

    /// The resolved tail exemplars, oldest first.
    pub fn exemplars(&self) -> impl ExactSizeIterator<Item = &Exemplar> {
        self.exemplars.iter()
    }

    /// Appends a busy interval, evicting the oldest past the interval
    /// cap; returns the number evicted (0 or 1) so the runtime can
    /// count it into `forensics.interval_dropped`.
    pub fn push_interval(&mut self, iv: BusyInterval) -> u64 {
        self.intervals.push_back(iv);
        if self.intervals.len() > self.caps.intervals {
            self.intervals.pop_front();
            1
        } else {
            0
        }
    }

    /// The recorded busy intervals, oldest first.
    pub fn intervals(&self) -> impl ExactSizeIterator<Item = &BusyInterval> {
        self.intervals.iter()
    }

    /// Appends one window's top-K snapshot, evicting the oldest past
    /// the top-K cap; returns the number evicted (0 or 1) so the
    /// runtime can count it into `forensics.topk_dropped`.
    pub fn push_topk(&mut self, snap: TopKSnapshot) -> u64 {
        self.topks.push_back(snap);
        if self.topks.len() > self.caps.topks {
            self.topks.pop_front();
            1
        } else {
            0
        }
    }

    /// The recorded top-K snapshots, oldest first.
    pub fn topks(&self) -> impl ExactSizeIterator<Item = &TopKSnapshot> {
        self.topks.iter()
    }

    /// Total sample count across all series.
    pub fn len(&self) -> usize {
        self.series.values().map(|v| v.len()).sum()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Folds `other` into `self`, re-sorting each series by sample time.
    ///
    /// The sort is stable, so when shards carry equal timestamps the
    /// merged order is the merge-call order — merging per-worker
    /// timelines in worker-index order therefore yields one canonical
    /// result regardless of thread interleaving.
    pub fn merge(&mut self, other: &Timeline) {
        if self.interval_us == 0 {
            self.interval_us = other.interval_us;
        }
        for (name, samples) in &other.series {
            let s = self.series.entry(name.clone()).or_default();
            s.extend_from_slice(samples);
            s.sort_by_key(|&(t, _)| t);
        }
        self.alerts.extend(other.alerts.iter().cloned());
        self.alerts.sort_by_key(|a| a.t_us);
        self.exemplars.extend(other.exemplars.iter().cloned());
        self.exemplars
            .make_contiguous()
            .sort_by(|a, b| a.t_us.cmp(&b.t_us).then_with(|| a.series.cmp(&b.series)));
        while self.exemplars.len() > self.caps.exemplars {
            self.exemplars.pop_front();
        }
        self.intervals.extend(other.intervals.iter().copied());
        self.intervals
            .make_contiguous()
            .sort_by_key(|iv| (iv.start_us, iv.track));
        while self.intervals.len() > self.caps.intervals {
            self.intervals.pop_front();
        }
        self.topks.extend(other.topks.iter().cloned());
        self.topks
            .make_contiguous()
            .sort_by_key(|s| (s.t_us, s.dim));
        while self.topks.len() > self.caps.topks {
            self.topks.pop_front();
        }
    }

    /// Renders every sample as one JSON object per line, sorted by
    /// series name then time: `{"series":"…","t_us":N,"value":V}`.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for (name, samples) in &self.series {
            for &(t, v) in samples {
                out.push_str(&format!(
                    "{{\"series\":\"{}\",\"t_us\":{},\"value\":{}}}\n",
                    json_escape(name),
                    t,
                    json_num(v)
                ));
            }
        }
        out
    }

    /// Renders the timeline as RFC-4180-ish CSV with a
    /// `series,t_us,value` header, sorted like
    /// [`to_ndjson`](Timeline::to_ndjson).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,t_us,value\n");
        for (name, samples) in &self.series {
            let quoted = if name.contains([',', '"', '\n']) {
                format!("\"{}\"", name.replace('"', "\"\""))
            } else {
                name.clone()
            };
            for &(t, v) in samples {
                out.push_str(&format!("{quoted},{t},{v}\n"));
            }
        }
        out
    }

    /// Parses a timeline back from [`to_ndjson`](Timeline::to_ndjson)
    /// output — the doctor's bundle-reader path. The writer pins the
    /// exact line shape (`{"series":"…","t_us":N,"value":V}`) and Rust's
    /// float `Display` is shortest-round-trip, so a parse of an export
    /// reproduces the original samples bit-for-bit (`null` values come
    /// back as NaN, matching what `to_ndjson` collapsed them from).
    ///
    /// `interval_us` is not stored in the ndjson stream; callers supply
    /// it from the bundle manifest.
    pub fn from_ndjson(s: &str, interval_us: u64) -> Result<Timeline, String> {
        let mut t = Timeline::new(interval_us);
        for (ln, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("timeline ndjson line {}: {what}: {line}", ln + 1);
            let rest = line
                .strip_prefix("{\"series\":\"")
                .ok_or_else(|| err("missing series prefix"))?;
            let (name, rest) = take_json_string(rest).ok_or_else(|| err("unterminated series"))?;
            let rest = rest
                .strip_prefix(",\"t_us\":")
                .ok_or_else(|| err("missing t_us"))?;
            let digits_end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            let t_us: u64 = rest[..digits_end].parse().map_err(|_| err("bad t_us"))?;
            let rest = rest[digits_end..]
                .strip_prefix(",\"value\":")
                .ok_or_else(|| err("missing value"))?;
            let num = rest.strip_suffix('}').ok_or_else(|| err("missing }"))?;
            let value = if num == "null" {
                f64::NAN
            } else {
                num.parse().map_err(|_| err("bad value"))?
            };
            t.record(t_us, &name, value);
        }
        Ok(t)
    }

    /// Parses a timeline back from [`to_csv`](Timeline::to_csv) output
    /// (the `series,t_us,value` header plus one row per sample; series
    /// names containing `,`/`"`/newline arrive RFC-4180 quoted).
    pub fn from_csv(s: &str, interval_us: u64) -> Result<Timeline, String> {
        let mut t = Timeline::new(interval_us);
        let mut lines = s.lines().enumerate();
        match lines.next() {
            Some((_, "series,t_us,value")) => {}
            other => return Err(format!("timeline csv: bad header {other:?}")),
        }
        for (ln, line) in lines {
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("timeline csv line {}: {what}: {line}", ln + 1);
            let (name, rest) = if let Some(q) = line.strip_prefix('"') {
                // Quoted name: scan for the closing quote, un-doubling "".
                let mut name = String::new();
                let mut chars = q.chars();
                loop {
                    match chars.next() {
                        Some('"') => match chars.clone().next() {
                            Some('"') => {
                                chars.next();
                                name.push('"');
                            }
                            _ => break,
                        },
                        Some(c) => name.push(c),
                        None => return Err(err("unterminated quote")),
                    }
                }
                let rest = chars.as_str();
                let rest = rest.strip_prefix(',').ok_or_else(|| err("missing comma"))?;
                (name, rest)
            } else {
                let (name, rest) = line.split_once(',').ok_or_else(|| err("missing comma"))?;
                (name.to_owned(), rest)
            };
            let (t_str, v_str) = rest.split_once(',').ok_or_else(|| err("missing value"))?;
            let t_us: u64 = t_str.parse().map_err(|_| err("bad t_us"))?;
            let value: f64 = v_str.parse().map_err(|_| err("bad value"))?;
            t.record(t_us, &name, value);
        }
        Ok(t)
    }

    /// Renders the alert log as one JSON object per line in time order:
    /// `{"t_us":…,"rule":"…","series":"…","value":…,"threshold":…,
    /// "state":"firing"|"cleared","detail":"…"}`.
    pub fn alerts_ndjson(&self) -> String {
        let mut out = String::new();
        for a in &self.alerts {
            out.push_str(&format!(
                "{{\"t_us\":{},\"rule\":\"{}\",\"series\":\"{}\",\"value\":{},\
                 \"threshold\":{},\"state\":\"{}\",\"detail\":\"{}\"}}\n",
                a.t_us,
                json_escape(&a.rule),
                json_escape(&a.series),
                json_num(a.value),
                json_num(a.threshold),
                a.state.as_str(),
                json_escape(&a.detail)
            ));
        }
        out
    }

    /// Parses an alert log back from
    /// [`alerts_ndjson`](Timeline::alerts_ndjson) output.
    pub fn alerts_from_ndjson(s: &str) -> Result<Vec<AlertRecord>, String> {
        let mut out = Vec::new();
        for (ln, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("alerts ndjson line {}: {what}: {line}", ln + 1);
            let rest = line
                .strip_prefix("{\"t_us\":")
                .ok_or_else(|| err("missing t_us"))?;
            let digits_end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            let t_us: u64 = rest[..digits_end].parse().map_err(|_| err("bad t_us"))?;
            let rest = rest[digits_end..]
                .strip_prefix(",\"rule\":\"")
                .ok_or_else(|| err("missing rule"))?;
            let (rule, rest) = take_json_string(rest).ok_or_else(|| err("unterminated rule"))?;
            let rest = rest
                .strip_prefix(",\"series\":\"")
                .ok_or_else(|| err("missing series"))?;
            let (series, rest) =
                take_json_string(rest).ok_or_else(|| err("unterminated series"))?;
            let rest = rest
                .strip_prefix(",\"value\":")
                .ok_or_else(|| err("missing value"))?;
            let (value, rest) = take_json_number(rest).ok_or_else(|| err("bad value"))?;
            let rest = rest
                .strip_prefix(",\"threshold\":")
                .ok_or_else(|| err("missing threshold"))?;
            let (threshold, rest) = take_json_number(rest).ok_or_else(|| err("bad threshold"))?;
            let rest = rest
                .strip_prefix(",\"state\":\"")
                .ok_or_else(|| err("missing state"))?;
            let (state_str, rest) =
                take_json_string(rest).ok_or_else(|| err("unterminated state"))?;
            let state = match state_str.as_str() {
                "firing" => AlertState::Firing,
                "cleared" => AlertState::Cleared,
                _ => return Err(err("unknown state")),
            };
            let rest = rest
                .strip_prefix(",\"detail\":\"")
                .ok_or_else(|| err("missing detail"))?;
            let (detail, rest) =
                take_json_string(rest).ok_or_else(|| err("unterminated detail"))?;
            if rest != "}" {
                return Err(err("trailing content"));
            }
            out.push(AlertRecord {
                t_us,
                rule,
                series,
                value,
                threshold,
                state,
                detail,
            });
        }
        Ok(out)
    }

    /// Renders the exemplar log as one JSON object per line in retained
    /// order: `{"t_us":…,"series":"…","value":…,"pubend":…,"ts":…}`
    /// followed by whichever of `birth_us`/`log_us`/`forward_us`/
    /// `ingest_us` anchors resolved (absent anchors are omitted).
    pub fn exemplars_ndjson(&self) -> String {
        let mut out = String::new();
        for e in &self.exemplars {
            out.push_str(&format!(
                "{{\"t_us\":{},\"series\":\"{}\",\"value\":{},\"pubend\":{},\"ts\":{}",
                e.t_us,
                json_escape(&e.series),
                json_num(e.value),
                e.pubend,
                e.ts
            ));
            for (k, v) in [
                ("birth_us", e.birth_us),
                ("log_us", e.log_us),
                ("forward_us", e.forward_us),
                ("ingest_us", e.ingest_us),
            ] {
                if let Some(v) = v {
                    out.push_str(&format!(",\"{k}\":{v}"));
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// Parses an exemplar log back from
    /// [`exemplars_ndjson`](Timeline::exemplars_ndjson) output.
    pub fn exemplars_from_ndjson(s: &str) -> Result<Vec<Exemplar>, String> {
        let mut out = Vec::new();
        for (ln, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("exemplars ndjson line {}: {what}: {line}", ln + 1);
            let rest = line
                .strip_prefix("{\"t_us\":")
                .ok_or_else(|| err("missing t_us"))?;
            let (t_us, rest) = take_u64(rest).ok_or_else(|| err("bad t_us"))?;
            let rest = rest
                .strip_prefix(",\"series\":\"")
                .ok_or_else(|| err("missing series"))?;
            let (series, rest) =
                take_json_string(rest).ok_or_else(|| err("unterminated series"))?;
            let rest = rest
                .strip_prefix(",\"value\":")
                .ok_or_else(|| err("missing value"))?;
            let (value, rest) = take_json_number(rest).ok_or_else(|| err("bad value"))?;
            let rest = rest
                .strip_prefix(",\"pubend\":")
                .ok_or_else(|| err("missing pubend"))?;
            let (pubend, rest) = take_u64(rest).ok_or_else(|| err("bad pubend"))?;
            let rest = rest
                .strip_prefix(",\"ts\":")
                .ok_or_else(|| err("missing ts"))?;
            let (ts, rest) = take_u64(rest).ok_or_else(|| err("bad ts"))?;
            let mut rest = rest;
            let mut anchors = [None; 4];
            for (i, k) in ["birth_us", "log_us", "forward_us", "ingest_us"]
                .iter()
                .enumerate()
            {
                let prefix = format!(",\"{k}\":");
                if let Some(r) = rest.strip_prefix(prefix.as_str()) {
                    let (v, r) = take_u64(r).ok_or_else(|| err("bad anchor"))?;
                    anchors[i] = Some(v);
                    rest = r;
                }
            }
            if rest != "}" {
                return Err(err("trailing content"));
            }
            out.push(Exemplar {
                t_us,
                series,
                value,
                pubend: pubend as u32,
                ts,
                birth_us: anchors[0],
                log_us: anchors[1],
                forward_us: anchors[2],
                ingest_us: anchors[3],
            });
        }
        Ok(out)
    }

    /// Renders the busy-interval log as one JSON object per line in
    /// retained order:
    /// `{"track":…,"kind":"…","start_us":…,"dur_us":…}`.
    pub fn intervals_ndjson(&self) -> String {
        let mut out = String::new();
        for iv in &self.intervals {
            out.push_str(&format!(
                "{{\"track\":{},\"kind\":\"{}\",\"start_us\":{},\"dur_us\":{}}}\n",
                iv.track,
                json_escape(iv.kind),
                iv.start_us,
                iv.dur_us
            ));
        }
        out
    }

    /// Parses a busy-interval log back from
    /// [`intervals_ndjson`](Timeline::intervals_ndjson) output; unknown
    /// kinds collapse to `"other"` rather than failing.
    pub fn intervals_from_ndjson(s: &str) -> Result<Vec<BusyInterval>, String> {
        let mut out = Vec::new();
        for (ln, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("intervals ndjson line {}: {what}: {line}", ln + 1);
            let rest = line
                .strip_prefix("{\"track\":")
                .ok_or_else(|| err("missing track"))?;
            let (track, rest) = take_u64(rest).ok_or_else(|| err("bad track"))?;
            let rest = rest
                .strip_prefix(",\"kind\":\"")
                .ok_or_else(|| err("missing kind"))?;
            let (kind, rest) = take_json_string(rest).ok_or_else(|| err("unterminated kind"))?;
            let rest = rest
                .strip_prefix(",\"start_us\":")
                .ok_or_else(|| err("missing start_us"))?;
            let (start_us, rest) = take_u64(rest).ok_or_else(|| err("bad start_us"))?;
            let rest = rest
                .strip_prefix(",\"dur_us\":")
                .ok_or_else(|| err("missing dur_us"))?;
            let (dur_us, rest) = take_u64(rest).ok_or_else(|| err("bad dur_us"))?;
            if rest != "}" {
                return Err(err("trailing content"));
            }
            out.push(BusyInterval {
                track: track as u32,
                kind: intern_kind(&kind),
                start_us,
                dur_us,
            });
        }
        Ok(out)
    }

    /// Renders the top-K snapshot log as one JSON object per line in
    /// retained order: `{"t_us":…,"dim":"…","total":…,"entries":
    /// [{"entity":…,"count":…,"err":…},…]}` with entries in ranked
    /// order (count descending, entity ascending on ties).
    pub fn topks_ndjson(&self) -> String {
        let mut out = String::new();
        for s in &self.topks {
            out.push_str(&format!(
                "{{\"t_us\":{},\"dim\":\"{}\",\"total\":{},\"entries\":[",
                s.t_us,
                json_escape(s.dim),
                s.total
            ));
            for (i, e) in s.entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"entity\":{},\"count\":{},\"err\":{}}}",
                    e.entity, e.count, e.err
                ));
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Parses a top-K snapshot log back from
    /// [`topks_ndjson`](Timeline::topks_ndjson) output; unknown
    /// dimensions collapse to `"other"` rather than failing (same
    /// policy as interval kinds).
    pub fn topks_from_ndjson(s: &str) -> Result<Vec<TopKSnapshot>, String> {
        let mut out = Vec::new();
        for (ln, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("topk ndjson line {}: {what}: {line}", ln + 1);
            let rest = line
                .strip_prefix("{\"t_us\":")
                .ok_or_else(|| err("missing t_us"))?;
            let (t_us, rest) = take_u64(rest).ok_or_else(|| err("bad t_us"))?;
            let rest = rest
                .strip_prefix(",\"dim\":\"")
                .ok_or_else(|| err("missing dim"))?;
            let (dim, rest) = take_json_string(rest).ok_or_else(|| err("unterminated dim"))?;
            let rest = rest
                .strip_prefix(",\"total\":")
                .ok_or_else(|| err("missing total"))?;
            let (total, rest) = take_u64(rest).ok_or_else(|| err("bad total"))?;
            let mut rest = rest
                .strip_prefix(",\"entries\":[")
                .ok_or_else(|| err("missing entries"))?;
            let mut entries = Vec::new();
            while let Some(r) = rest.strip_prefix("{\"entity\":") {
                let (entity, r) = take_u64(r).ok_or_else(|| err("bad entity"))?;
                let r = r
                    .strip_prefix(",\"count\":")
                    .ok_or_else(|| err("missing count"))?;
                let (count, r) = take_u64(r).ok_or_else(|| err("bad count"))?;
                let r = r
                    .strip_prefix(",\"err\":")
                    .ok_or_else(|| err("missing err"))?;
                let (e, r) = take_u64(r).ok_or_else(|| err("bad err"))?;
                entries.push(TopKEntry {
                    entity,
                    count,
                    err: e,
                });
                rest = r
                    .strip_prefix('}')
                    .ok_or_else(|| err("unterminated entry"))?;
                if let Some(r) = rest.strip_prefix(',') {
                    rest = r;
                }
            }
            if rest != "]}" {
                return Err(err("trailing content"));
            }
            out.push(TopKSnapshot {
                t_us,
                dim: intern_dim(&dim),
                total,
                entries,
            });
        }
        Ok(out)
    }
}

/// Consumes a leading run of ASCII digits as a `u64`, yielding the
/// remainder (used by the fixed-order ndjson parsers above).
fn take_u64(s: &str) -> Option<(u64, &str)> {
    let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    s[..end].parse().ok().map(|v| (v, &s[end..]))
}

/// Consumes an escaped JSON string body up to its closing quote,
/// returning the unescaped content and the remainder after the quote.
/// Only the escapes [`json_escape`] emits are understood.
fn take_json_string(s: &str) -> Option<(String, &str)> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// Consumes a JSON number (or the `null` that [`json_num`] writes for
/// non-finite values, returned as NaN), yielding the remainder.
fn take_json_number(s: &str) -> Option<(f64, &str)> {
    if let Some(rest) = s.strip_prefix("null") {
        return Some((f64::NAN, rest));
    }
    let end = s
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(s.len());
    s[..end].parse().ok().map(|v| (v, &s[end..]))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders `values` as a fixed-palette ASCII sparkline, resampled by
/// bucket mean to at most `width` glyphs. Flat series render as a line
/// of mid-height blocks rather than dividing by a zero range.
pub fn sparkline(values: &[f64], width: usize) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    // Resample to ≤ width columns: mean of each equal span.
    let cols = width.min(values.len());
    let mut sampled = Vec::with_capacity(cols);
    for c in 0..cols {
        let lo = c * values.len() / cols;
        let hi = ((c + 1) * values.len() / cols).max(lo + 1);
        let span = &values[lo..hi];
        sampled.push(span.iter().sum::<f64>() / span.len() as f64);
    }
    let min = sampled.iter().copied().fold(f64::INFINITY, f64::min);
    let max = sampled.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    sampled
        .iter()
        .map(|&v| {
            if !(max - min).is_normal() {
                GLYPHS[3]
            } else {
                let frac = ((v - min) / (max - min)).clamp(0.0, 1.0);
                GLYPHS[((frac * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Strips trailing shard segments (`.w<i>`, `.n<i>`, `.p<i>`, chained)
/// from a gauge name; `None` when the name carries no shard suffix.
///
/// ```
/// use gryphon_sim::telemetry::strip_shard_suffix;
/// assert_eq!(
///     strip_shard_suffix("telemetry.doubt_width_ticks.n3.p1"),
///     Some("telemetry.doubt_width_ticks")
/// );
/// assert_eq!(strip_shard_suffix("telemetry.queue_depth"), None);
/// ```
pub fn strip_shard_suffix(name: &str) -> Option<&str> {
    let mut base = name;
    while let Some((head, tail)) = base.rsplit_once('.') {
        let mut chars = tail.chars();
        let is_shard = matches!(chars.next(), Some('w' | 'n' | 'p'))
            && chars.clone().next().is_some()
            && chars.all(|c| c.is_ascii_digit());
        if !is_shard || head.is_empty() {
            break;
        }
        base = head;
    }
    (base.len() < name.len()).then_some(base)
}

/// The registered base name a timeline series derives from: strips a
/// `.rate` suffix (counter-rate series) or a `.q<digits>` suffix
/// (windowed histogram quantile series, e.g.
/// `lineage.stage.deliver_us.q99`), then any shard segments.
pub fn series_base_name(series: &str) -> &str {
    let stem = series.strip_suffix(".rate").unwrap_or(series);
    let stem = match stem.rsplit_once('.') {
        Some((head, tail))
            if tail.len() > 1
                && tail.starts_with('q')
                && tail[1..].chars().all(|c| c.is_ascii_digit()) =>
        {
            head
        }
        _ => stem,
    };
    strip_shard_suffix(stem).unwrap_or(stem)
}

/// Windowed sampler: every `interval_us` it snapshots all gauges and
/// turns counter deltas into per-second rates, appending to a
/// [`Timeline`]. The caller owns the clock — the simulator fires due
/// samples between scheduler events; the threaded runtime fires them
/// from a wall-clock thread.
#[derive(Debug, Clone)]
pub struct Sampler {
    interval_us: u64,
    next_at_us: u64,
    last_t_us: u64,
    last_counters: BTreeMap<String, f64>,
    last_histograms: BTreeMap<String, Histogram>,
    timeline: Timeline,
}

impl Sampler {
    /// A sampler firing every `interval_us` (clamped to ≥ 1).
    pub fn new(interval_us: u64) -> Sampler {
        let interval_us = interval_us.max(1);
        Sampler {
            interval_us,
            next_at_us: interval_us,
            last_t_us: 0,
            last_counters: BTreeMap::new(),
            last_histograms: BTreeMap::new(),
            timeline: Timeline::new(interval_us),
        }
    }

    /// Time of the next due sample.
    pub fn next_at_us(&self) -> u64 {
        self.next_at_us
    }

    /// Takes one sample at `t_us` from `metrics`: every gauge becomes a
    /// point on its own series (plus the shard-stripped aggregate sum),
    /// every counter becomes a point on `<name>.rate` holding its
    /// per-second rate over the elapsed window, and every histogram that
    /// saw samples this window contributes `<name>.q50/.q95/.q99`
    /// points from the window-only distribution (cumulative minus the
    /// previous snapshot — see [`Histogram::delta_since`]). The `q`
    /// spelling keeps quantile suffixes disjoint from `.p<i>` pubend
    /// shard suffixes.
    pub fn sample(&mut self, t_us: u64, metrics: &Metrics) {
        let mut aggregates: BTreeMap<&str, f64> = BTreeMap::new();
        for name in metrics.gauge_names() {
            let v = metrics.gauge(name).unwrap_or(0.0);
            self.timeline.record(t_us, name, v);
            if let Some(base) = strip_shard_suffix(name) {
                *aggregates.entry(base).or_insert(0.0) += v;
            }
        }
        let rendered: Vec<(String, f64)> = aggregates
            .into_iter()
            .map(|(base, v)| (base.to_owned(), v))
            .collect();
        for (base, v) in rendered {
            self.timeline.record(t_us, &base, v);
        }
        let dt_s = t_us.saturating_sub(self.last_t_us) as f64 / 1e6;
        for name in metrics.counter_names() {
            let cur = metrics.counter(name);
            let prev = self.last_counters.get(name).copied().unwrap_or(0.0);
            let rate = if dt_s > 0.0 { (cur - prev) / dt_s } else { 0.0 };
            self.timeline.record(t_us, &format!("{name}.rate"), rate);
            self.last_counters.insert(name.to_owned(), cur);
        }
        for name in metrics.histogram_names() {
            let Some(hist) = metrics.histogram(name) else {
                continue;
            };
            let window = match self.last_histograms.get(name) {
                Some(prev) => hist.delta_since(prev),
                None => hist.clone(),
            };
            if window.count() > 0 {
                for (suffix, q) in [("q50", 0.5), ("q95", 0.95), ("q99", 0.99)] {
                    if let Some(v) = window.percentile(q) {
                        self.timeline.record(t_us, &format!("{name}.{suffix}"), v);
                    }
                }
            }
            self.last_histograms.insert(name.to_owned(), hist.clone());
        }
        self.last_t_us = t_us;
        self.next_at_us = t_us.saturating_add(self.interval_us);
    }

    /// The timeline collected so far.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Mutable access to the timeline, used by the health engine to
    /// attach alert records to the run it judged.
    pub fn timeline_mut(&mut self) -> &mut Timeline {
        &mut self.timeline
    }

    /// Consumes the sampler, yielding its timeline.
    pub fn into_timeline(self) -> Timeline {
        self.timeline
    }
}

/// A tiny blocking-TCP text endpoint: serves whatever `content()`
/// returns to every HTTP GET, `Connection: close` per request, plus a
/// `/healthz` liveness route answering with `health()` (an alert-count
/// body). Used for the live `/metrics` scrape
/// (`RunningNet::serve_metrics`) and `xp --metrics-addr`; shut down
/// explicitly via [`TextServer::shutdown`] or implicitly on drop —
/// either way the accept thread is joined, never leaked.
pub struct TextServer {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl TextServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and serves `content()` from a
    /// background thread until the server is shut down. `/healthz`
    /// reports zero alerts; use
    /// [`serve_with_health`](TextServer::serve_with_health) to wire a
    /// real alert count.
    pub fn serve<F>(addr: &str, content: F) -> std::io::Result<TextServer>
    where
        F: Fn() -> String + Send + 'static,
    {
        Self::serve_with_health(addr, content, || "alerts 0\n".to_owned())
    }

    /// Like [`serve`](TextServer::serve), with a dedicated `health()`
    /// closure answering `GET /healthz` (convention: `alerts <n>\n`,
    /// always status 200 — liveness, not judgement; the body carries
    /// the count for the caller to alert on).
    pub fn serve_with_health<F, H>(addr: &str, content: F, health: H) -> std::io::Result<TextServer>
    where
        F: Fn() -> String + Send + 'static,
        H: Fn() -> String + Send + 'static,
    {
        let listener = std::net::TcpListener::bind(addr)?;
        // Nonblocking accept so the thread can observe the stop flag;
        // each accepted socket is switched back to blocking I/O.
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("telemetry-scrape".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((mut sock, _)) => {
                            let _ = sock.set_nonblocking(false);
                            let _ =
                                sock.set_read_timeout(Some(std::time::Duration::from_millis(500)));
                            match read_request_line(&mut sock) {
                                Some((method, path)) if method == "GET" => {
                                    let body =
                                        if path == "/healthz" || path.starts_with("/healthz?") {
                                            health()
                                        } else {
                                            content()
                                        };
                                    let head = format!(
                                        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; \
                                         version=0.0.4\r\nContent-Length: {}\r\nConnection: \
                                         close\r\n\r\n",
                                        body.len()
                                    );
                                    let _ = sock.write_all(head.as_bytes());
                                    let _ = sock.write_all(body.as_bytes());
                                }
                                _ => {
                                    let _ = sock.write_all(
                                        b"HTTP/1.1 405 Method Not Allowed\r\nAllow: GET\r\n\
                                          Content-Length: 0\r\nConnection: close\r\n\r\n",
                                    );
                                }
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(TextServer {
            local_addr,
            stop,
            join: Some(join),
        })
    }

    /// The bound address (resolves port 0 to the assigned port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stops the accept loop and joins the accept thread; the listening
    /// socket is closed when this returns. Idempotent — `Drop` routes
    /// through here too.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for TextServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads the request head until the header terminator, EOF, timeout, or
/// a sanity cap, and returns the request-line `(method, path)` tokens
/// (`None` on a garbled request, which the caller answers with 405).
fn read_request_line(sock: &mut std::net::TcpStream) -> Option<(String, String)> {
    let mut buf = [0u8; 1024];
    let mut seen: Vec<u8> = Vec::new();
    loop {
        match sock.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                seen.extend_from_slice(&buf[..n]);
                if seen.windows(4).any(|w| w == b"\r\n\r\n") || seen.len() > 8_192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = std::str::from_utf8(&seen).ok()?;
    let request_line = head.lines().next()?;
    let mut tokens = request_line.split_whitespace();
    let method = tokens.next()?;
    let path = tokens.next()?;
    (!method.is_empty()).then(|| (method.to_owned(), path.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::names;

    #[test]
    fn sampler_snapshots_gauges_and_counter_rates() {
        let mut m = Metrics::default();
        let mut s = Sampler::new(1_000_000);
        m.set_gauge("telemetry.queue_depth", 4.0);
        m.count("delivered", 100.0);
        s.sample(1_000_000, &m);
        m.set_gauge("telemetry.queue_depth", 9.0);
        m.count("delivered", 50.0);
        s.sample(2_000_000, &m);

        let t = s.timeline();
        assert_eq!(
            t.series("telemetry.queue_depth"),
            &[(1_000_000, 4.0), (2_000_000, 9.0)]
        );
        // First window rate covers t=0..1s (100 events), second 1..2s.
        assert_eq!(
            t.series("delivered.rate"),
            &[(1_000_000, 100.0), (2_000_000, 50.0)]
        );
    }

    #[test]
    fn sharded_gauges_aggregate_to_base_name() {
        let mut m = Metrics::default();
        m.set_gauge("telemetry.queue_depth.w0", 3.0);
        m.set_gauge("telemetry.queue_depth.w1", 5.0);
        m.set_gauge("telemetry.doubt_width_ticks.n3.p1", 7.0);
        let mut s = Sampler::new(500);
        s.sample(500, &m);
        let t = s.timeline();
        assert_eq!(t.series("telemetry.queue_depth"), &[(500, 8.0)]);
        assert_eq!(t.series("telemetry.queue_depth.w1"), &[(500, 5.0)]);
        assert_eq!(t.series("telemetry.doubt_width_ticks"), &[(500, 7.0)]);
    }

    #[test]
    fn shard_suffix_stripping() {
        assert_eq!(strip_shard_suffix("a.b.w12"), Some("a.b"));
        assert_eq!(strip_shard_suffix("a.n3.p4"), Some("a"));
        assert_eq!(strip_shard_suffix("a.b"), None);
        assert_eq!(strip_shard_suffix("a.w"), None); // no digits
        assert_eq!(strip_shard_suffix("a.q4"), None); // unknown kind
        assert_eq!(series_base_name("shb.delivered.rate"), "shb.delivered");
        assert_eq!(
            series_base_name("telemetry.catchup_backlog_ticks.n5"),
            names::TELEMETRY_CATCHUP_BACKLOG_TICKS
        );
        // Quantile suffixes strip like .rate does, and stay disjoint
        // from `.p<i>` pubend shard suffixes.
        assert_eq!(
            series_base_name("lineage.stage.deliver_us.q99"),
            names::LINEAGE_STAGE_DELIVER_US
        );
        assert_eq!(series_base_name("a.q"), "a.q"); // no digits: not a quantile
        assert_eq!(series_base_name("a.p99"), "a"); // pubend shard, not quantile
    }

    #[test]
    fn exports_are_deterministic_and_parseable() {
        let mut t = Timeline::new(250);
        t.record(250, "b", 1.5);
        t.record(500, "b", 2.5);
        t.record(250, "a", f64::NAN);
        let nd = t.to_ndjson();
        assert_eq!(
            nd,
            "{\"series\":\"a\",\"t_us\":250,\"value\":null}\n\
             {\"series\":\"b\",\"t_us\":250,\"value\":1.5}\n\
             {\"series\":\"b\",\"t_us\":500,\"value\":2.5}\n"
        );
        let csv = t.to_csv();
        assert!(csv.starts_with("series,t_us,value\n"));
        assert!(csv.contains("b,250,1.5\n"));
    }

    #[test]
    fn timeline_merge_is_worker_index_deterministic() {
        let mut w0 = Timeline::new(100);
        w0.record(100, "x", 1.0);
        w0.record(200, "x", 2.0);
        let mut w1 = Timeline::new(100);
        w1.record(100, "x", 10.0);
        let mut merged = Timeline::new(0);
        merged.merge(&w0);
        merged.merge(&w1);
        // Stable sort: equal timestamps keep merge-call (worker-index)
        // order.
        assert_eq!(merged.series("x"), &[(100, 1.0), (100, 10.0), (200, 2.0)]);
        assert_eq!(merged.interval_us(), 100);
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[], 10), "");
        let flat = sparkline(&[3.0, 3.0, 3.0], 10);
        assert_eq!(flat.chars().count(), 3);
        let ramp = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], 8);
        assert_eq!(ramp, "▁▂▃▄▅▆▇█");
        // Resampling caps the width.
        let wide: Vec<f64> = (0..1_000).map(|i| i as f64).collect();
        assert_eq!(sparkline(&wide, 60).chars().count(), 60);
    }

    /// The bundle-format pin (ISSUE 6 satellite): a populated timeline
    /// exported to ndjson and CSV must re-parse — the doctor's reader
    /// path — into the identical sample store, byte-for-byte on
    /// re-export.
    #[test]
    fn timeline_ndjson_and_csv_round_trip() {
        let mut m = Metrics::default();
        m.set_gauge("telemetry.queue_depth.w0", 3.0);
        m.set_gauge("telemetry.queue_depth.w1", 5.0);
        m.set_gauge("telemetry.doubt_width_ticks.n3.p1", 7.25);
        m.count("shb.delivered", 123.0);
        m.observe("lineage.stage.deliver_us", 1_234.5);
        let mut s = Sampler::new(500_000);
        s.sample(500_000, &m);
        m.count("shb.delivered", 77.0);
        m.set_gauge("telemetry.queue_depth.w0", 0.125);
        s.sample(1_000_000, &m);
        let original = s.into_timeline();
        assert!(!original.is_empty());
        assert!(!original.series("telemetry.queue_depth").is_empty());
        assert!(!original.series("shb.delivered.rate").is_empty());

        let nd = original.to_ndjson();
        let parsed = Timeline::from_ndjson(&nd, original.interval_us()).unwrap();
        assert_eq!(parsed.series_names(), original.series_names());
        for name in original.series_names() {
            assert_eq!(parsed.series(name), original.series(name), "series {name}");
        }
        // Byte-for-byte: re-export of the parse equals the export.
        assert_eq!(parsed.to_ndjson(), nd);

        let csv = original.to_csv();
        let from_csv = Timeline::from_csv(&csv, original.interval_us()).unwrap();
        assert_eq!(from_csv.to_csv(), csv);
        assert_eq!(from_csv.to_ndjson(), nd);
    }

    #[test]
    fn timeline_parsers_reject_garbage_and_handle_quoting() {
        assert!(Timeline::from_ndjson("{\"nope\":1}\n", 500).is_err());
        assert!(Timeline::from_csv("wrong,header\n", 500).is_err());
        // Awkward series names survive both formats.
        let mut t = Timeline::new(250);
        t.record(250, "weird \"name\", with, commas", 1.5);
        t.record(500, "tab\tseries", -0.75);
        let nd = t.to_ndjson();
        let parsed = Timeline::from_ndjson(&nd, 250).unwrap();
        assert_eq!(parsed.to_ndjson(), nd);
        let csv = t.to_csv();
        let parsed_csv = Timeline::from_csv(&csv, 250).unwrap();
        assert_eq!(parsed_csv.to_ndjson(), nd);
        // Non-finite values collapse to null and come back NaN.
        let mut nan = Timeline::new(250);
        nan.record(250, "x", f64::NAN);
        let back = Timeline::from_ndjson(&nan.to_ndjson(), 250).unwrap();
        assert!(back.series("x")[0].1.is_nan());
    }

    #[test]
    fn sampler_emits_windowed_histogram_quantiles() {
        let mut m = Metrics::default();
        for v in [100.0, 200.0, 300.0] {
            m.observe("lat_us", v);
        }
        let mut s = Sampler::new(1_000_000);
        s.sample(1_000_000, &m);
        // Second window: much slower samples; the windowed q50 must
        // reflect only them, not the cumulative distribution.
        for v in [10_000.0, 20_000.0, 30_000.0] {
            m.observe("lat_us", v);
        }
        s.sample(2_000_000, &m);
        // Third window: no new samples → no new quantile points.
        s.sample(3_000_000, &m);
        let t = s.timeline();
        let q50 = t.series("lat_us.q50");
        assert_eq!(q50.len(), 2, "quiet windows must not emit points");
        assert!(q50[0].1 < 1_000.0, "first window q50 {}", q50[0].1);
        assert!(q50[1].1 > 5_000.0, "second window q50 {}", q50[1].1);
        assert_eq!(t.series("lat_us.q95").len(), 2);
        assert_eq!(t.series("lat_us.q99").len(), 2);
    }

    #[test]
    fn alerts_live_beside_samples_and_round_trip() {
        use crate::health::{AlertRecord, AlertState};
        let mut t = Timeline::new(500);
        t.record(500, "g", 1.0);
        t.push_alert(AlertRecord {
            t_us: 500,
            rule: "queue_depth".into(),
            series: "telemetry.queue_depth".into(),
            value: 2e6,
            threshold: 1e6,
            state: AlertState::Firing,
            detail: "level 2000000 > ceiling 1000000".into(),
        });
        t.push_alert(AlertRecord {
            t_us: 1_000,
            rule: "queue_depth".into(),
            series: "telemetry.queue_depth".into(),
            value: 10.0,
            threshold: 0.0,
            state: AlertState::Cleared,
            detail: "back \"within\" bounds".into(),
        });
        // Sample exports stay alert-free.
        assert_eq!(t.to_ndjson().lines().count(), 1);
        assert_eq!(t.len(), 1);
        let nd = t.alerts_ndjson();
        assert_eq!(nd.lines().count(), 2);
        let parsed = Timeline::alerts_from_ndjson(&nd).unwrap();
        assert_eq!(parsed, t.alerts());
        // Merge carries alerts across and keeps time order.
        let mut merged = Timeline::new(0);
        merged.merge(&t);
        assert_eq!(merged.alerts().len(), 2);
        assert!(merged.alerts()[0].t_us <= merged.alerts()[1].t_us);
        assert!(Timeline::alerts_from_ndjson("{\"bogus\":1}").is_err());
    }

    /// The forensics streams (exemplars, busy intervals) live beside
    /// the sample series, export as their own ndjson files, re-parse
    /// byte-for-byte, and stay strictly bounded.
    #[test]
    fn exemplars_and_intervals_round_trip_and_stay_bounded() {
        use crate::forensics::{BusyInterval, Exemplar, KIND_COMMIT, KIND_DISPATCH};
        let mut t = Timeline::new(500);
        t.record(500, "g", 1.0);
        assert_eq!(
            t.push_exemplar(Exemplar {
                t_us: 900,
                series: "lineage.stage.deliver_us".into(),
                value: 1_250.5,
                pubend: 3,
                ts: 41,
                birth_us: Some(100),
                log_us: Some(400),
                forward_us: None,
                ingest_us: Some(700),
            }),
            0
        );
        t.push_interval(BusyInterval {
            track: 2,
            kind: KIND_COMMIT,
            start_us: 650,
            dur_us: 250,
        });
        t.push_interval(BusyInterval {
            track: 0,
            kind: KIND_DISPATCH,
            start_us: 700,
            dur_us: 10,
        });
        // Sample exports stay sample-only.
        assert_eq!(t.to_ndjson().lines().count(), 1);
        let ex_nd = t.exemplars_ndjson();
        assert!(!ex_nd.contains("\"forward_us\""), "{ex_nd}");
        let parsed = Timeline::exemplars_from_ndjson(&ex_nd).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0], *t.exemplars().next().unwrap());
        let iv_nd = t.intervals_ndjson();
        let parsed_iv = Timeline::intervals_from_ndjson(&iv_nd).unwrap();
        assert_eq!(parsed_iv.len(), 2);
        assert_eq!(parsed_iv[0].kind, KIND_COMMIT);
        // Re-export of the parse equals the export.
        let mut back = Timeline::new(500);
        for e in parsed {
            back.push_exemplar(e);
        }
        for iv in parsed_iv {
            back.push_interval(iv);
        }
        assert_eq!(back.exemplars_ndjson(), ex_nd);
        assert_eq!(back.intervals_ndjson(), iv_nd);
        // Unknown kinds collapse to "other"; garbage is rejected.
        let odd = Timeline::intervals_from_ndjson(
            "{\"track\":1,\"kind\":\"weird\",\"start_us\":1,\"dur_us\":2}\n",
        )
        .unwrap();
        assert_eq!(odd[0].kind, "other");
        assert!(Timeline::exemplars_from_ndjson("{\"bogus\":1}\n").is_err());
        assert!(Timeline::intervals_from_ndjson("{\"bogus\":1}\n").is_err());
        // Bounded: pushes past the cap evict the oldest and report it.
        let mut full = Timeline::new(1);
        let mut evicted = 0u64;
        for i in 0..(TIMELINE_INTERVAL_CAP as u64 + 10) {
            evicted += full.push_interval(BusyInterval {
                track: 0,
                kind: KIND_DISPATCH,
                start_us: i,
                dur_us: 1,
            });
        }
        assert_eq!(full.intervals().len(), TIMELINE_INTERVAL_CAP);
        assert_eq!(evicted, 10);
        assert_eq!(full.intervals().next().unwrap().start_us, 10);
        // Caps are runtime-configurable (ISSUE 10 satellite): an
        // override string tightens the same bound without recompiling.
        let caps = TimelineCaps::parse("intervals=16, exemplars=8,topks=4").unwrap();
        assert_eq!(
            caps,
            TimelineCaps {
                exemplars: 8,
                intervals: 16,
                topks: 4
            }
        );
        let mut tight = Timeline::with_caps(1, caps);
        let mut evicted = 0u64;
        for i in 0..20u64 {
            evicted += tight.push_interval(BusyInterval {
                track: 0,
                kind: KIND_DISPATCH,
                start_us: i,
                dur_us: 1,
            });
        }
        assert_eq!(tight.intervals().len(), 16);
        assert_eq!(evicted, 4);
        // Partial overrides keep compiled defaults; garbage is loud.
        let partial = TimelineCaps::parse("exemplars=100").unwrap();
        assert_eq!(partial.intervals, TIMELINE_INTERVAL_CAP);
        assert_eq!(partial.topks, TIMELINE_TOPK_CAP);
        assert_eq!(TimelineCaps::parse("").unwrap(), TimelineCaps::default());
        assert!(TimelineCaps::parse("exemplars=lots").is_err());
        assert!(TimelineCaps::parse("mystery=4").is_err());
        assert!(TimelineCaps::parse("exemplars").is_err());
        // Zero clamps to 1 (a cap of 0 would make every push a drop).
        assert_eq!(TimelineCaps::parse("topks=0").unwrap().topks, 1);
        // Merge carries both streams across.
        let mut merged = Timeline::new(0);
        merged.merge(&t);
        assert_eq!(merged.exemplars().len(), 1);
        assert_eq!(merged.intervals().len(), 2);
        assert_eq!(
            merged.intervals().next().unwrap().kind,
            KIND_COMMIT,
            "sorted by start_us"
        );
    }

    /// The top-K stream (ISSUE 10): snapshots live beside the sample
    /// series, export as their own ndjson file, re-parse byte-for-byte,
    /// stay bounded, and merge deterministically.
    #[test]
    fn topk_snapshots_round_trip_and_stay_bounded() {
        use crate::sketch::{TopKEntry, TopKSnapshot, DIM_SUB_BYTES, DIM_SUB_LAG};
        let mut t = Timeline::with_caps(
            500,
            TimelineCaps {
                topks: 3,
                ..TimelineCaps::default()
            },
        );
        t.record(500, "g", 1.0);
        assert_eq!(
            t.push_topk(TopKSnapshot {
                t_us: 500,
                dim: DIM_SUB_LAG,
                total: 5_010,
                entries: vec![
                    TopKEntry {
                        entity: 42,
                        count: 5_000,
                        err: 0
                    },
                    TopKEntry {
                        entity: 7,
                        count: 10,
                        err: 2
                    },
                ],
            }),
            0
        );
        t.push_topk(TopKSnapshot {
            t_us: 500,
            dim: DIM_SUB_BYTES,
            total: 0,
            entries: vec![],
        });
        // Sample exports stay sample-only.
        assert_eq!(t.to_ndjson().lines().count(), 1);
        let nd = t.topks_ndjson();
        assert!(
            nd.starts_with(
                "{\"t_us\":500,\"dim\":\"slowest_subs_by_lag\",\"total\":5010,\
                 \"entries\":[{\"entity\":42,\"count\":5000,\"err\":0},"
            ),
            "{nd}"
        );
        let parsed = Timeline::topks_from_ndjson(&nd).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], *t.topks().next().unwrap());
        let mut back = Timeline::new(500);
        for s in parsed {
            back.push_topk(s);
        }
        assert_eq!(back.topks_ndjson(), nd);
        // Unknown dims collapse to "other"; garbage is rejected.
        let odd = Timeline::topks_from_ndjson(
            "{\"t_us\":1,\"dim\":\"weird\",\"total\":1,\
             \"entries\":[{\"entity\":1,\"count\":1,\"err\":0}]}\n",
        )
        .unwrap();
        assert_eq!(odd[0].dim, "other");
        assert!(Timeline::topks_from_ndjson("{\"bogus\":1}\n").is_err());
        // Bounded: pushes past the cap evict the oldest and report it.
        let mut evicted = 0u64;
        for i in 0..5u64 {
            evicted += t.push_topk(TopKSnapshot {
                t_us: 1_000 + i,
                dim: DIM_SUB_LAG,
                total: 1,
                entries: vec![],
            });
        }
        assert_eq!(t.topks().len(), 3);
        assert_eq!(evicted, 4);
        // Merge carries the stream across sorted by (t_us, dim).
        let mut merged = Timeline::new(0);
        merged.merge(&t);
        assert_eq!(merged.topks().len(), 3);
        assert!(merged
            .topks()
            .zip(merged.topks().skip(1))
            .all(|(a, b)| a.t_us <= b.t_us));
    }

    /// The `/healthz` satellite: liveness route answers 200 with the
    /// alert-count body, and `shutdown` joins the accept thread and
    /// closes the listener.
    #[test]
    fn text_server_healthz_and_shutdown() {
        let mut srv = TextServer::serve_with_health(
            "127.0.0.1:0",
            || "metrics\n".to_owned(),
            || "alerts 3\n".to_owned(),
        )
        .unwrap();
        let addr = srv.local_addr();
        let fetch = |path: &str| {
            let mut sock = std::net::TcpStream::connect(addr).unwrap();
            sock.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .unwrap();
            let mut resp = String::new();
            sock.read_to_string(&mut resp).unwrap();
            resp
        };
        let health = fetch("/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.ends_with("alerts 3\n"), "{health}");
        let metrics = fetch("/metrics");
        assert!(metrics.ends_with("metrics\n"), "{metrics}");
        srv.shutdown();
        srv.shutdown(); // idempotent
        assert!(
            std::net::TcpStream::connect(addr).is_err(),
            "listener must close on shutdown"
        );
    }

    #[test]
    fn text_server_serves_scrapes() {
        let srv = TextServer::serve("127.0.0.1:0", || "# TYPE up gauge\nup 1\n".into()).unwrap();
        let addr = srv.local_addr();
        for _ in 0..2 {
            let mut sock = std::net::TcpStream::connect(addr).unwrap();
            sock.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let mut resp = String::new();
            sock.read_to_string(&mut resp).unwrap();
            assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
            assert!(resp.contains("Content-Type: text/plain; version=0.0.4\r\n"));
            assert!(resp.contains("Content-Length: "), "{resp}");
            assert!(resp.ends_with("up 1\n"), "{resp}");
        }
    }

    #[test]
    fn text_server_rejects_non_get() {
        let srv = TextServer::serve("127.0.0.1:0", || "secret\n".into()).unwrap();
        let addr = srv.local_addr();
        for req in [
            "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n",
            "DELETE / HTTP/1.1\r\nHost: x\r\n\r\n",
        ] {
            let mut sock = std::net::TcpStream::connect(addr).unwrap();
            sock.write_all(req.as_bytes()).unwrap();
            let mut resp = String::new();
            sock.read_to_string(&mut resp).unwrap();
            assert!(
                resp.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"),
                "{resp}"
            );
            assert!(resp.contains("Allow: GET\r\n"), "{resp}");
            assert!(!resp.contains("secret"), "body must not leak: {resp}");
        }
        // GET still works after rejected requests.
        let mut sock = std::net::TcpStream::connect(addr).unwrap();
        sock.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        sock.read_to_string(&mut resp).unwrap();
        assert!(resp.ends_with("secret\n"), "{resp}");
    }
}
