//! Time-resolved telemetry: windowed sampling of gauges and counter
//! rates into a deterministic in-memory timeline (DESIGN.md §13).
//!
//! End-of-run snapshots (metrics, lineage, Prometheus dumps) cannot
//! show the paper's *dynamics* — doubt-horizon width, catchup backlog
//! and queue depth all spike around failures and drain afterwards. The
//! [`Sampler`] closes that gap: on a fixed interval (virtual time under
//! [`Sim`](crate::Sim), wall time under `gryphon-net`) it snapshots
//! every registered gauge and converts every counter into a per-window
//! rate, appending to a [`Timeline`] that exports as ndjson, CSV, or an
//! ASCII sparkline block.
//!
//! Sampling never feeds back into the run: the simulator fires samples
//! between scheduler events without enqueueing anything, so traces and
//! deliveries stay bit-identical with the sampler on or off (the
//! `golden_determinism` suite asserts this).
//!
//! # Shard suffixes and aggregates
//!
//! Gauge publishers that exist per entity append a shard suffix to the
//! registered base name: `.w<i>` per worker, `.n<i>` per node, `.p<i>`
//! per pubend (possibly chained, e.g.
//! `telemetry.doubt_width_ticks.n3.p1`). The sampler records each
//! suffixed series verbatim *and* derives the unsuffixed base series as
//! the sum over shards, so `telemetry.catchup_backlog_ticks` is always
//! present as the run-wide backlog no matter how many SHBs publish it.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::metrics::Metrics;

/// A deterministic in-memory time series store: one sample vector per
/// series name, ordered by sample time.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    interval_us: u64,
    series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl Timeline {
    /// An empty timeline tagged with its sampling interval.
    pub fn new(interval_us: u64) -> Timeline {
        Timeline {
            interval_us,
            series: BTreeMap::new(),
        }
    }

    /// The sampling interval this timeline was collected at.
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// Appends a `(t_us, value)` sample to `name`.
    pub fn record(&mut self, t_us: u64, name: &str, value: f64) {
        self.series
            .entry(name.to_owned())
            .or_default()
            .push((t_us, value));
    }

    /// All series names (sorted).
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }

    /// The samples of series `name` (empty if never recorded).
    pub fn series(&self, name: &str) -> &[(u64, f64)] {
        self.series.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Total sample count across all series.
    pub fn len(&self) -> usize {
        self.series.values().map(|v| v.len()).sum()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Folds `other` into `self`, re-sorting each series by sample time.
    ///
    /// The sort is stable, so when shards carry equal timestamps the
    /// merged order is the merge-call order — merging per-worker
    /// timelines in worker-index order therefore yields one canonical
    /// result regardless of thread interleaving.
    pub fn merge(&mut self, other: &Timeline) {
        if self.interval_us == 0 {
            self.interval_us = other.interval_us;
        }
        for (name, samples) in &other.series {
            let s = self.series.entry(name.clone()).or_default();
            s.extend_from_slice(samples);
            s.sort_by_key(|&(t, _)| t);
        }
    }

    /// Renders every sample as one JSON object per line, sorted by
    /// series name then time: `{"series":"…","t_us":N,"value":V}`.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for (name, samples) in &self.series {
            for &(t, v) in samples {
                out.push_str(&format!(
                    "{{\"series\":\"{}\",\"t_us\":{},\"value\":{}}}\n",
                    json_escape(name),
                    t,
                    json_num(v)
                ));
            }
        }
        out
    }

    /// Renders the timeline as RFC-4180-ish CSV with a
    /// `series,t_us,value` header, sorted like
    /// [`to_ndjson`](Timeline::to_ndjson).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,t_us,value\n");
        for (name, samples) in &self.series {
            let quoted = if name.contains([',', '"', '\n']) {
                format!("\"{}\"", name.replace('"', "\"\""))
            } else {
                name.clone()
            };
            for &(t, v) in samples {
                out.push_str(&format!("{quoted},{t},{v}\n"));
            }
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders `values` as a fixed-palette ASCII sparkline, resampled by
/// bucket mean to at most `width` glyphs. Flat series render as a line
/// of mid-height blocks rather than dividing by a zero range.
pub fn sparkline(values: &[f64], width: usize) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    // Resample to ≤ width columns: mean of each equal span.
    let cols = width.min(values.len());
    let mut sampled = Vec::with_capacity(cols);
    for c in 0..cols {
        let lo = c * values.len() / cols;
        let hi = ((c + 1) * values.len() / cols).max(lo + 1);
        let span = &values[lo..hi];
        sampled.push(span.iter().sum::<f64>() / span.len() as f64);
    }
    let min = sampled.iter().copied().fold(f64::INFINITY, f64::min);
    let max = sampled.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    sampled
        .iter()
        .map(|&v| {
            if !(max - min).is_normal() {
                GLYPHS[3]
            } else {
                let frac = ((v - min) / (max - min)).clamp(0.0, 1.0);
                GLYPHS[((frac * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Strips trailing shard segments (`.w<i>`, `.n<i>`, `.p<i>`, chained)
/// from a gauge name; `None` when the name carries no shard suffix.
///
/// ```
/// use gryphon_sim::telemetry::strip_shard_suffix;
/// assert_eq!(
///     strip_shard_suffix("telemetry.doubt_width_ticks.n3.p1"),
///     Some("telemetry.doubt_width_ticks")
/// );
/// assert_eq!(strip_shard_suffix("telemetry.queue_depth"), None);
/// ```
pub fn strip_shard_suffix(name: &str) -> Option<&str> {
    let mut base = name;
    while let Some((head, tail)) = base.rsplit_once('.') {
        let mut chars = tail.chars();
        let is_shard = matches!(chars.next(), Some('w' | 'n' | 'p'))
            && chars.clone().next().is_some()
            && chars.all(|c| c.is_ascii_digit());
        if !is_shard || head.is_empty() {
            break;
        }
        base = head;
    }
    (base.len() < name.len()).then_some(base)
}

/// The registered base name a timeline series derives from: strips a
/// `.rate` suffix (counter-rate series) and any shard segments.
pub fn series_base_name(series: &str) -> &str {
    let stem = series.strip_suffix(".rate").unwrap_or(series);
    strip_shard_suffix(stem).unwrap_or(stem)
}

/// Windowed sampler: every `interval_us` it snapshots all gauges and
/// turns counter deltas into per-second rates, appending to a
/// [`Timeline`]. The caller owns the clock — the simulator fires due
/// samples between scheduler events; the threaded runtime fires them
/// from a wall-clock thread.
#[derive(Debug, Clone)]
pub struct Sampler {
    interval_us: u64,
    next_at_us: u64,
    last_t_us: u64,
    last_counters: BTreeMap<String, f64>,
    timeline: Timeline,
}

impl Sampler {
    /// A sampler firing every `interval_us` (clamped to ≥ 1).
    pub fn new(interval_us: u64) -> Sampler {
        let interval_us = interval_us.max(1);
        Sampler {
            interval_us,
            next_at_us: interval_us,
            last_t_us: 0,
            last_counters: BTreeMap::new(),
            timeline: Timeline::new(interval_us),
        }
    }

    /// Time of the next due sample.
    pub fn next_at_us(&self) -> u64 {
        self.next_at_us
    }

    /// Takes one sample at `t_us` from `metrics`: every gauge becomes a
    /// point on its own series (plus the shard-stripped aggregate sum),
    /// and every counter becomes a point on `<name>.rate` holding its
    /// per-second rate over the elapsed window.
    pub fn sample(&mut self, t_us: u64, metrics: &Metrics) {
        let mut aggregates: BTreeMap<&str, f64> = BTreeMap::new();
        for name in metrics.gauge_names() {
            let v = metrics.gauge(name).unwrap_or(0.0);
            self.timeline.record(t_us, name, v);
            if let Some(base) = strip_shard_suffix(name) {
                *aggregates.entry(base).or_insert(0.0) += v;
            }
        }
        let rendered: Vec<(String, f64)> = aggregates
            .into_iter()
            .map(|(base, v)| (base.to_owned(), v))
            .collect();
        for (base, v) in rendered {
            self.timeline.record(t_us, &base, v);
        }
        let dt_s = t_us.saturating_sub(self.last_t_us) as f64 / 1e6;
        for name in metrics.counter_names() {
            let cur = metrics.counter(name);
            let prev = self.last_counters.get(name).copied().unwrap_or(0.0);
            let rate = if dt_s > 0.0 { (cur - prev) / dt_s } else { 0.0 };
            self.timeline.record(t_us, &format!("{name}.rate"), rate);
            self.last_counters.insert(name.to_owned(), cur);
        }
        self.last_t_us = t_us;
        self.next_at_us = t_us.saturating_add(self.interval_us);
    }

    /// The timeline collected so far.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Consumes the sampler, yielding its timeline.
    pub fn into_timeline(self) -> Timeline {
        self.timeline
    }
}

/// A tiny blocking-TCP text endpoint: serves whatever `content()`
/// returns to every HTTP GET, `Connection: close` per request. Used for
/// the live `/metrics` scrape (`RunningNet::serve_metrics`) and `xp
/// --metrics-addr`; shuts its accept loop down on drop.
pub struct TextServer {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl TextServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and serves `content()` from a
    /// background thread until the server is dropped.
    pub fn serve<F>(addr: &str, content: F) -> std::io::Result<TextServer>
    where
        F: Fn() -> String + Send + 'static,
    {
        let listener = std::net::TcpListener::bind(addr)?;
        // Nonblocking accept so the thread can observe the stop flag;
        // each accepted socket is switched back to blocking I/O.
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("telemetry-scrape".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((mut sock, _)) => {
                            let _ = sock.set_nonblocking(false);
                            let _ =
                                sock.set_read_timeout(Some(std::time::Duration::from_millis(500)));
                            drain_request(&mut sock);
                            let body = content();
                            let head = format!(
                                "HTTP/1.1 200 OK\r\nContent-Type: text/plain; \
                                 version=0.0.4\r\nContent-Length: {}\r\nConnection: \
                                 close\r\n\r\n",
                                body.len()
                            );
                            let _ = sock.write_all(head.as_bytes());
                            let _ = sock.write_all(body.as_bytes());
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(TextServer {
            local_addr,
            stop,
            join: Some(join),
        })
    }

    /// The bound address (resolves port 0 to the assigned port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }
}

impl Drop for TextServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Reads the request until the header terminator, EOF, timeout, or a
/// sanity cap — the endpoint serves the same body regardless.
fn drain_request(sock: &mut std::net::TcpStream) {
    let mut buf = [0u8; 1024];
    let mut seen: Vec<u8> = Vec::new();
    loop {
        match sock.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                seen.extend_from_slice(&buf[..n]);
                if seen.windows(4).any(|w| w == b"\r\n\r\n") || seen.len() > 8_192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::names;

    #[test]
    fn sampler_snapshots_gauges_and_counter_rates() {
        let mut m = Metrics::default();
        let mut s = Sampler::new(1_000_000);
        m.set_gauge("telemetry.queue_depth", 4.0);
        m.count("delivered", 100.0);
        s.sample(1_000_000, &m);
        m.set_gauge("telemetry.queue_depth", 9.0);
        m.count("delivered", 50.0);
        s.sample(2_000_000, &m);

        let t = s.timeline();
        assert_eq!(
            t.series("telemetry.queue_depth"),
            &[(1_000_000, 4.0), (2_000_000, 9.0)]
        );
        // First window rate covers t=0..1s (100 events), second 1..2s.
        assert_eq!(
            t.series("delivered.rate"),
            &[(1_000_000, 100.0), (2_000_000, 50.0)]
        );
    }

    #[test]
    fn sharded_gauges_aggregate_to_base_name() {
        let mut m = Metrics::default();
        m.set_gauge("telemetry.queue_depth.w0", 3.0);
        m.set_gauge("telemetry.queue_depth.w1", 5.0);
        m.set_gauge("telemetry.doubt_width_ticks.n3.p1", 7.0);
        let mut s = Sampler::new(500);
        s.sample(500, &m);
        let t = s.timeline();
        assert_eq!(t.series("telemetry.queue_depth"), &[(500, 8.0)]);
        assert_eq!(t.series("telemetry.queue_depth.w1"), &[(500, 5.0)]);
        assert_eq!(t.series("telemetry.doubt_width_ticks"), &[(500, 7.0)]);
    }

    #[test]
    fn shard_suffix_stripping() {
        assert_eq!(strip_shard_suffix("a.b.w12"), Some("a.b"));
        assert_eq!(strip_shard_suffix("a.n3.p4"), Some("a"));
        assert_eq!(strip_shard_suffix("a.b"), None);
        assert_eq!(strip_shard_suffix("a.w"), None); // no digits
        assert_eq!(strip_shard_suffix("a.q4"), None); // unknown kind
        assert_eq!(series_base_name("shb.delivered.rate"), "shb.delivered");
        assert_eq!(
            series_base_name("telemetry.catchup_backlog_ticks.n5"),
            names::TELEMETRY_CATCHUP_BACKLOG_TICKS
        );
    }

    #[test]
    fn exports_are_deterministic_and_parseable() {
        let mut t = Timeline::new(250);
        t.record(250, "b", 1.5);
        t.record(500, "b", 2.5);
        t.record(250, "a", f64::NAN);
        let nd = t.to_ndjson();
        assert_eq!(
            nd,
            "{\"series\":\"a\",\"t_us\":250,\"value\":null}\n\
             {\"series\":\"b\",\"t_us\":250,\"value\":1.5}\n\
             {\"series\":\"b\",\"t_us\":500,\"value\":2.5}\n"
        );
        let csv = t.to_csv();
        assert!(csv.starts_with("series,t_us,value\n"));
        assert!(csv.contains("b,250,1.5\n"));
    }

    #[test]
    fn timeline_merge_is_worker_index_deterministic() {
        let mut w0 = Timeline::new(100);
        w0.record(100, "x", 1.0);
        w0.record(200, "x", 2.0);
        let mut w1 = Timeline::new(100);
        w1.record(100, "x", 10.0);
        let mut merged = Timeline::new(0);
        merged.merge(&w0);
        merged.merge(&w1);
        // Stable sort: equal timestamps keep merge-call (worker-index)
        // order.
        assert_eq!(merged.series("x"), &[(100, 1.0), (100, 10.0), (200, 2.0)]);
        assert_eq!(merged.interval_us(), 100);
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[], 10), "");
        let flat = sparkline(&[3.0, 3.0, 3.0], 10);
        assert_eq!(flat.chars().count(), 3);
        let ramp = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], 8);
        assert_eq!(ramp, "▁▂▃▄▅▆▇█");
        // Resampling caps the width.
        let wide: Vec<f64> = (0..1_000).map(|i| i as f64).collect();
        assert_eq!(sparkline(&wide, 60).chars().count(), 60);
    }

    #[test]
    fn text_server_serves_scrapes() {
        let srv = TextServer::serve("127.0.0.1:0", || "# TYPE up gauge\nup 1\n".into()).unwrap();
        let addr = srv.local_addr();
        for _ in 0..2 {
            let mut sock = std::net::TcpStream::connect(addr).unwrap();
            sock.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let mut resp = String::new();
            sock.read_to_string(&mut resp).unwrap();
            assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
            assert!(resp.ends_with("up 1\n"), "{resp}");
        }
    }
}
