//! Population observability (DESIGN.md §18): Space-Saving top-K
//! heavy-hitter sketches and the bucketed subscriber lag spectrum.
//!
//! Aggregate telemetry (histograms, timelines, exemplars) says *how*
//! the system behaved; at 10^6 durable subscribers it cannot say *who*
//! — which subscriber is slow, which pubend is hot, who is driving the
//! nack storm. This module answers those questions in bounded memory:
//!
//! * [`SpaceSaving`] — the Metwally/Agrawal/El Abbadi heavy-hitter
//!   sketch: at most K counters, any entity whose true weight exceeds
//!   the smallest tracked count is guaranteed to be present, and every
//!   reported count overestimates truth by at most the entry's recorded
//!   `err`. All ties break on entity id, so identical offer sequences
//!   produce identical sketches on every platform.
//! * [`LagSpectrum`] — a fixed array of power-of-two buckets holding
//!   the distribution of per-subscriber delivery lag, refilled by an
//!   O(live slab) sweep each sampler window. Quantiles are read at
//!   bucket resolution (within 2× of exact), which is plenty to detect
//!   p99-vs-p50 skew.
//! * [`PopulationSketch`] — one sketch per attribution dimension
//!   (slowest subscribers by lag, hottest subscribers by bytes, hottest
//!   pubends, top nackers) plus the spectrum, fed through the
//!   [`NodeCtx::attribute`](crate::runtime::NodeCtx::attribute) hook
//!   and drained into [`TopKSnapshot`]s once per sampler window.
//!
//! Like the forensics layer, everything here is a pure observer:
//! arming a sketch changes no queue order, no RNG draw and no
//! scheduling decision, so `golden_determinism` stays bit-identical
//! with the sketch armed or disarmed.

/// Attribution dimension: per-subscriber delivery lag (µs), refilled by
/// the slab sweep each window — top-K = slowest subscribers.
pub const DIM_SUB_LAG: &str = "slowest_subs_by_lag";
/// Attribution dimension: bytes delivered per subscriber this window.
pub const DIM_SUB_BYTES: &str = "hottest_subs_by_bytes";
/// Attribution dimension: bytes delivered per pubend this window.
pub const DIM_PUBEND_BYTES: &str = "hottest_pubends";
/// Attribution dimension: catchup holes (nacks) per subscriber.
pub const DIM_SUB_NACKS: &str = "top_nackers";

/// All dimensions in canonical drain order.
pub const DIMENSIONS: [&str; 4] = [DIM_SUB_LAG, DIM_SUB_BYTES, DIM_PUBEND_BYTES, DIM_SUB_NACKS];

/// Interns a parsed dimension back to its `&'static str` (unknown
/// dimensions collapse to `"other"` rather than failing the parse).
pub fn intern_dim(s: &str) -> &'static str {
    match s {
        "slowest_subs_by_lag" => DIM_SUB_LAG,
        "hottest_subs_by_bytes" => DIM_SUB_BYTES,
        "hottest_pubends" => DIM_PUBEND_BYTES,
        "top_nackers" => DIM_SUB_NACKS,
        _ => "other",
    }
}

/// Tuning for the population sketch; [`SketchConfig::default`] matches
/// what `apply_sim_defaults` arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchConfig {
    /// Counters per dimension (the K in top-K). Memory is O(K) per
    /// dimension regardless of population size.
    pub k: usize,
}

impl Default for SketchConfig {
    fn default() -> SketchConfig {
        SketchConfig { k: 8 }
    }
}

/// One tracked entity in a [`SpaceSaving`] sketch (and one element of a
/// [`TopKSnapshot`]). `count` overestimates the entity's true offered
/// weight by at most `err`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKEntry {
    /// The attributed entity (subscriber id or pubend id).
    pub entity: u64,
    /// Estimated weight (true weight ≤ `count` ≤ true weight + `err`).
    pub count: u64,
    /// Maximum overestimation inherited from displaced entries.
    pub err: u64,
}

/// Space-Saving heavy-hitter sketch over `u64` entity ids.
///
/// Holds at most K `(entity, count, err)` entries. A new entity beyond
/// capacity displaces the minimum-count entry, inheriting its count as
/// both floor and error bound — the classic guarantee follows: every
/// entity whose true weight exceeds `min_count` is tracked, and
/// `count - err ≤ true ≤ count`. Eviction ties break on the *largest*
/// entity id (small ids are sticky); reporting ties break on the
/// *smallest* (stable ranked output). K is small (single digits to low
/// tens), so linear scans beat any pointer structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceSaving {
    cap: usize,
    entries: Vec<TopKEntry>,
    total: u64,
}

impl SpaceSaving {
    /// An empty sketch tracking at most `k` entities. Capacity is
    /// preallocated so offers never allocate.
    pub fn new(k: usize) -> SpaceSaving {
        let cap = k.max(1);
        SpaceSaving {
            cap,
            entries: Vec::with_capacity(cap),
            total: 0,
        }
    }

    /// Adds `weight` to `entity`'s estimated count.
    pub fn offer(&mut self, entity: u64, weight: u64) {
        self.total += weight;
        if let Some(e) = self.entries.iter_mut().find(|e| e.entity == entity) {
            e.count += weight;
            return;
        }
        if self.entries.len() < self.cap {
            self.entries.push(TopKEntry {
                entity,
                count: weight,
                err: 0,
            });
            return;
        }
        let mut min = 0;
        for (i, e) in self.entries.iter().enumerate() {
            let m = &self.entries[min];
            if e.count < m.count || (e.count == m.count && e.entity > m.entity) {
                min = i;
            }
        }
        let floor = self.entries[min].count;
        self.entries[min] = TopKEntry {
            entity,
            count: floor + weight,
            err: floor,
        };
    }

    /// Folds another sketch into this one (worker-shard merge at stop,
    /// in worker-index order). Entries arrive in canonical ranked order
    /// so the merge is deterministic; shared entities sum counts and
    /// error bounds, new entities displace minima as a plain offer
    /// would, additionally inheriting the incoming error bound.
    pub fn absorb(&mut self, other: &SpaceSaving) {
        for e in other.top() {
            if let Some(mine) = self.entries.iter_mut().find(|m| m.entity == e.entity) {
                mine.count += e.count;
                mine.err += e.err;
            } else {
                self.offer(e.entity, e.count);
                if let Some(mine) = self.entries.iter_mut().find(|m| m.entity == e.entity) {
                    mine.err += e.err;
                }
                self.total -= e.count; // offer() added it; fix below
            }
        }
        self.total += other.total;
    }

    /// The tracked entities ranked by estimated count descending,
    /// entity id ascending on ties.
    pub fn top(&self) -> Vec<TopKEntry> {
        let mut out = self.entries.clone();
        out.sort_by(|a, b| b.count.cmp(&a.count).then(a.entity.cmp(&b.entity)));
        out
    }

    /// Total weight offered (exact — used for dominance shares).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest tracked count: any entity with true weight above this
    /// is guaranteed to be present.
    pub fn min_count(&self) -> u64 {
        if self.entries.len() < self.cap {
            return 0;
        }
        self.entries.iter().map(|e| e.count).min().unwrap_or(0)
    }

    /// Entities currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been offered since the last clear.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resets counts for the next window (capacity retained).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.total = 0;
    }

    /// Heap bytes owned by the sketch — O(K), independent of how many
    /// distinct entities were offered.
    pub fn approx_heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<TopKEntry>()
    }
}

/// Number of power-of-two lag buckets: bucket 0 holds lag 0, bucket
/// `i ≥ 1` holds `[2^(i-1), 2^i)` µs; 64 buckets cover the full `u64`
/// range.
const SPECTRUM_BUCKETS: usize = 65;

/// Bucketed distribution of per-subscriber delivery lag, refilled by
/// the slab sweep each sampler window. Fixed-size, allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LagSpectrum {
    buckets: [u64; SPECTRUM_BUCKETS],
    count: u64,
    max_us: u64,
}

impl Default for LagSpectrum {
    fn default() -> LagSpectrum {
        LagSpectrum {
            buckets: [0; SPECTRUM_BUCKETS],
            count: 0,
            max_us: 0,
        }
    }
}

impl LagSpectrum {
    /// An empty spectrum.
    pub fn new() -> LagSpectrum {
        LagSpectrum::default()
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        }
    }

    /// Records one subscriber's current lag.
    pub fn record(&mut self, lag_us: u64) {
        self.buckets[Self::bucket_of(lag_us)] += 1;
        self.count += 1;
        self.max_us = self.max_us.max(lag_us);
    }

    /// The quantile `q ∈ [0, 1]` at bucket resolution: the upper bound
    /// of the first bucket whose cumulative population reaches
    /// `ceil(q · count)` (so the true quantile is within 2× below the
    /// returned value). Returns `None` on an empty spectrum.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                });
            }
        }
        Some(self.max_us)
    }

    /// Subscribers recorded this window.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest lag recorded this window (exact, not bucketed).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// True when nothing has been recorded since the last clear.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds another spectrum into this one (worker-shard merge).
    pub fn absorb(&mut self, other: &LagSpectrum) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Resets the spectrum for the next window.
    pub fn clear(&mut self) {
        self.buckets = [0; SPECTRUM_BUCKETS];
        self.count = 0;
        self.max_us = 0;
    }
}

/// Summary statistics of one window's [`LagSpectrum`], published as
/// `sketch.*` gauges so the health rules (lag-skew, dominance) can
/// judge them like any other series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumStats {
    /// Subscribers swept this window.
    pub population: u64,
    /// Median subscriber lag (bucket upper bound, µs).
    pub p50_us: u64,
    /// 99th-percentile subscriber lag (bucket upper bound, µs).
    pub p99_us: u64,
    /// Worst subscriber lag (exact, µs).
    pub max_us: u64,
}

impl SpectrumStats {
    /// p99 ÷ max(p50, 1): ≈1 when the population is uniform, large
    /// when a minority of subscribers lags far behind the median.
    pub fn skew(&self) -> f64 {
        self.p99_us as f64 / (self.p50_us.max(1)) as f64
    }
}

/// One window's ranked top-K for one dimension — one line in
/// `topk.ndjson`.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKSnapshot {
    /// Window end (sampler timestamp).
    pub t_us: u64,
    /// One of the `DIM_*` constants (or `"other"` after a parse).
    pub dim: &'static str,
    /// Total weight offered to the dimension this window (exact).
    pub total: u64,
    /// Ranked entries (count descending, entity ascending on ties).
    pub entries: Vec<TopKEntry>,
}

impl TopKSnapshot {
    /// Share of the window's total weight held by the top entity
    /// (0 when the window was empty).
    pub fn dominance_share(&self) -> f64 {
        match (self.entries.first(), self.total) {
            (Some(top), total) if total > 0 => top.count as f64 / total as f64,
            _ => 0.0,
        }
    }

    /// [`dominance_share`](Self::dominance_share) gated for alerting:
    /// returns 0 unless the window saw at least
    /// [`MIN_DOMINANCE_POPULATION`] distinct entities. With one or two
    /// subscribers the top entity trivially holds most of the weight,
    /// so the `entity_dominance` rule would fire on every small
    /// topology (e.g. the single-subscriber latency experiment);
    /// starvation is only meaningful against a real population.
    pub fn alarm_share(&self) -> f64 {
        if self.entries.len() >= MIN_DOMINANCE_POPULATION {
            self.dominance_share()
        } else {
            0.0
        }
    }
}

/// Minimum distinct entities in a window before
/// [`TopKSnapshot::alarm_share`] reports a non-zero dominance share.
pub const MIN_DOMINANCE_POPULATION: usize = 4;

/// Appends the leading entity of the attribution dimension behind
/// `series` to an alert detail line, so a firing `lag_skew` or
/// `entity_dominance` alert *names* the subscriber driving it instead
/// of only reporting the gauge level. No-op when the series is not
/// sketch-driven or the dimension produced no window.
pub fn name_culprit(detail: &mut String, series: &str, snaps: &[TopKSnapshot]) {
    let dim = if series.starts_with("sketch.sub_lag.") {
        DIM_SUB_LAG
    } else if series == crate::metrics::names::SKETCH_DOMINANCE_SHARE {
        DIM_SUB_BYTES
    } else {
        return;
    };
    let Some(snap) = snaps.iter().find(|s| s.dim == dim) else {
        return;
    };
    // A zero-weight leader (everyone caught up / nothing delivered)
    // names nobody — common on the cleared transition.
    let Some(top) = snap.entries.first().filter(|e| e.count > 0) else {
        return;
    };
    use std::fmt::Write;
    let _ = write!(
        detail,
        "; top {dim} entity {} (weight {} of {})",
        top.entity, top.count, snap.total
    );
}

/// The armed per-runtime sketch state: one [`SpaceSaving`] per
/// attribution dimension plus the lag spectrum. Fed through
/// [`NodeCtx::attribute`](crate::runtime::NodeCtx::attribute); drained
/// once per sampler window (simulator) or at stop (threaded runtime,
/// after the worker-index-order shard merge).
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationSketch {
    config: SketchConfig,
    lag: SpaceSaving,
    bytes: SpaceSaving,
    pubends: SpaceSaving,
    nacks: SpaceSaving,
    spectrum: LagSpectrum,
}

impl PopulationSketch {
    /// An empty armed sketch with `cfg`'s K.
    pub fn new(cfg: SketchConfig) -> PopulationSketch {
        PopulationSketch {
            config: cfg,
            lag: SpaceSaving::new(cfg.k),
            bytes: SpaceSaving::new(cfg.k),
            pubends: SpaceSaving::new(cfg.k),
            nacks: SpaceSaving::new(cfg.k),
            spectrum: LagSpectrum::new(),
        }
    }

    /// The configuration this sketch was armed with.
    pub fn config(&self) -> SketchConfig {
        self.config
    }

    /// Routes one attribution to its dimension. [`DIM_SUB_LAG`] feeds
    /// both the slowest-subscriber sketch and the lag spectrum; unknown
    /// dimensions are ignored (forward compatibility, same policy as
    /// unknown interval kinds).
    pub fn attribute(&mut self, dim: &str, entity: u64, weight: u64) {
        match intern_dim(dim) {
            d if d == DIM_SUB_LAG => {
                self.lag.offer(entity, weight);
                self.spectrum.record(weight);
            }
            d if d == DIM_SUB_BYTES => self.bytes.offer(entity, weight),
            d if d == DIM_PUBEND_BYTES => self.pubends.offer(entity, weight),
            d if d == DIM_SUB_NACKS => self.nacks.offer(entity, weight),
            _ => {}
        }
    }

    /// Folds another runtime shard's sketch into this one.
    pub fn absorb(&mut self, other: &PopulationSketch) {
        self.lag.absorb(&other.lag);
        self.bytes.absorb(&other.bytes);
        self.pubends.absorb(&other.pubends);
        self.nacks.absorb(&other.nacks);
        self.spectrum.absorb(&other.spectrum);
    }

    /// True when nothing was attributed this window (drain emits no
    /// snapshots — quiet windows cost no timeline entries, mirroring
    /// the sampler's quiet-histogram policy).
    pub fn is_empty(&self) -> bool {
        self.lag.is_empty()
            && self.bytes.is_empty()
            && self.pubends.is_empty()
            && self.nacks.is_empty()
            && self.spectrum.is_empty()
    }

    /// Closes the window: returns one ranked [`TopKSnapshot`] per
    /// non-empty dimension (canonical [`DIMENSIONS`] order) plus the
    /// spectrum summary, then resets all state for the next window.
    pub fn drain(&mut self, t_us: u64) -> (Vec<TopKSnapshot>, Option<SpectrumStats>) {
        let mut snaps = Vec::new();
        for (dim, sk) in [
            (DIM_SUB_LAG, &mut self.lag),
            (DIM_SUB_BYTES, &mut self.bytes),
            (DIM_PUBEND_BYTES, &mut self.pubends),
            (DIM_SUB_NACKS, &mut self.nacks),
        ] {
            if sk.is_empty() {
                continue;
            }
            snaps.push(TopKSnapshot {
                t_us,
                dim,
                total: sk.total(),
                entries: sk.top(),
            });
            sk.clear();
        }
        let stats = if self.spectrum.is_empty() {
            None
        } else {
            let s = SpectrumStats {
                population: self.spectrum.count(),
                p50_us: self.spectrum.quantile(0.50).unwrap_or(0),
                p99_us: self.spectrum.quantile(0.99).unwrap_or(0),
                max_us: self.spectrum.max_us(),
            };
            self.spectrum.clear();
            Some(s)
        };
        (snaps, stats)
    }

    /// Heap bytes owned by all four sketches — O(K), the bound the
    /// mega-subs acceptance test pins against a 10^6 population.
    pub fn approx_heap_bytes(&self) -> usize {
        self.lag.approx_heap_bytes()
            + self.bytes.approx_heap_bytes()
            + self.pubends.approx_heap_bytes()
            + self.nacks.approx_heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_saving_tracks_exact_counts_under_capacity() {
        let mut s = SpaceSaving::new(4);
        s.offer(1, 10);
        s.offer(2, 5);
        s.offer(1, 3);
        let top = s.top();
        assert_eq!(top.len(), 2);
        assert_eq!(
            top[0],
            TopKEntry {
                entity: 1,
                count: 13,
                err: 0
            }
        );
        assert_eq!(
            top[1],
            TopKEntry {
                entity: 2,
                count: 5,
                err: 0
            }
        );
        assert_eq!(s.total(), 18);
        assert_eq!(s.min_count(), 0, "under capacity nothing was displaced");
    }

    #[test]
    fn space_saving_displaces_minimum_and_bounds_error() {
        let mut s = SpaceSaving::new(2);
        s.offer(1, 100);
        s.offer(2, 1);
        s.offer(3, 50); // displaces entity 2 (count 1)
        let top = s.top();
        assert_eq!(top[0].entity, 1);
        assert_eq!(
            top[1],
            TopKEntry {
                entity: 3,
                count: 51,
                err: 1
            }
        );
        // True weight of 3 is 50: count (51) overestimates by ≤ err (1).
        assert!(top[1].count - top[1].err <= 50 && 50 <= top[1].count);
        assert_eq!(s.total(), 151, "total is exact even after displacement");
    }

    #[test]
    fn space_saving_ties_break_on_entity_id() {
        // Eviction tie: equal counts — the largest entity id goes.
        let mut s = SpaceSaving::new(2);
        s.offer(7, 5);
        s.offer(3, 5);
        s.offer(9, 1); // min-count tie between 7 and 3 → 7 evicted
        assert!(s.top().iter().any(|e| e.entity == 3));
        assert!(!s.top().iter().any(|e| e.entity == 7));
        // Report tie: equal counts rank by ascending entity id.
        let mut r = SpaceSaving::new(4);
        r.offer(9, 5);
        r.offer(2, 5);
        let ids: Vec<u64> = r.top().iter().map(|e| e.entity).collect();
        assert_eq!(ids, vec![2, 9]);
    }

    #[test]
    fn space_saving_absorb_sums_shared_and_keeps_totals() {
        let mut a = SpaceSaving::new(3);
        let mut b = SpaceSaving::new(3);
        a.offer(1, 10);
        a.offer(2, 4);
        b.offer(1, 5);
        b.offer(3, 7);
        a.absorb(&b);
        assert_eq!(a.total(), 26);
        let top = a.top();
        assert_eq!(
            top[0],
            TopKEntry {
                entity: 1,
                count: 15,
                err: 0
            }
        );
        assert!(top.iter().any(|e| e.entity == 3 && e.count == 7));
    }

    #[test]
    fn space_saving_memory_is_o_of_k() {
        let mut s = SpaceSaving::new(8);
        for i in 0..100_000u64 {
            s.offer(i, 1 + i % 7);
        }
        assert_eq!(s.len(), 8);
        assert!(
            s.approx_heap_bytes() <= 8 * std::mem::size_of::<TopKEntry>(),
            "capacity must not grow with distinct entities"
        );
    }

    #[test]
    fn spectrum_quantiles_at_bucket_resolution() {
        let mut sp = LagSpectrum::new();
        assert_eq!(sp.quantile(0.5), None);
        // 50 caught-up subscribers and one straggler: the p99 rank
        // (ceil(0.99·51) = 51) reaches the straggler's bucket.
        for _ in 0..50 {
            sp.record(0);
        }
        sp.record(1_000_000);
        assert_eq!(sp.count(), 51);
        assert_eq!(sp.quantile(0.5), Some(0));
        let p99 = sp.quantile(0.99).unwrap();
        assert!(p99 >= 1_000_000 / 2, "p99 bucket must cover the outlier");
        assert_eq!(sp.max_us(), 1_000_000);
        let stats = SpectrumStats {
            population: sp.count(),
            p50_us: sp.quantile(0.5).unwrap(),
            p99_us: p99,
            max_us: sp.max_us(),
        };
        assert!(stats.skew() > 100.0, "one straggler in 51 → massive skew");
        sp.clear();
        assert!(sp.is_empty());
    }

    #[test]
    fn spectrum_absorb_merges_buckets() {
        let mut a = LagSpectrum::new();
        let mut b = LagSpectrum::new();
        a.record(10);
        b.record(1_000);
        b.record(1_000);
        a.absorb(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_us(), 1_000);
        assert!(a.quantile(1.0).unwrap() >= 1_000);
    }

    #[test]
    fn population_sketch_drains_per_dimension_and_resets() {
        let mut p = PopulationSketch::new(SketchConfig { k: 4 });
        assert!(p.is_empty());
        p.attribute(DIM_SUB_LAG, 42, 5_000);
        p.attribute(DIM_SUB_LAG, 7, 10);
        p.attribute(DIM_SUB_BYTES, 42, 4_096);
        p.attribute(DIM_PUBEND_BYTES, 3, 4_096);
        p.attribute(DIM_SUB_NACKS, 42, 2);
        p.attribute("mystery_dimension", 1, 1); // ignored
        let (snaps, stats) = p.drain(1_000_000);
        assert_eq!(snaps.len(), 4);
        assert_eq!(snaps[0].dim, DIM_SUB_LAG);
        assert_eq!(snaps[0].entries[0].entity, 42, "slowest sub ranked first");
        assert_eq!(snaps[1].dim, DIM_SUB_BYTES);
        assert!((snaps[1].dominance_share() - 1.0).abs() < 1e-9);
        assert_eq!(
            snaps[1].alarm_share(),
            0.0,
            "a one-entity window is below the alerting population floor"
        );
        let stats = stats.expect("spectrum was fed");
        assert_eq!(stats.population, 2);
        assert!(stats.skew() > 1.0);
        assert!(p.is_empty(), "drain closes the window");
        let (snaps2, stats2) = p.drain(2_000_000);
        assert!(
            snaps2.is_empty() && stats2.is_none(),
            "quiet window emits nothing"
        );
    }

    #[test]
    fn name_culprit_names_the_leading_entity() {
        let mut p = PopulationSketch::new(SketchConfig { k: 4 });
        p.attribute(DIM_SUB_LAG, 2000, 500_000);
        p.attribute(DIM_SUB_LAG, 7, 0);
        let (snaps, _) = p.drain(1_000_000);

        let mut detail = String::from("level 99 > ceiling 64");
        name_culprit(&mut detail, "sketch.sub_lag.skew", &snaps);
        assert_eq!(
            detail,
            "level 99 > ceiling 64; top slowest_subs_by_lag entity 2000 (weight 500000 of 500000)"
        );

        // Non-sketch series and missing dimensions append nothing.
        let mut other = String::from("x");
        name_culprit(&mut other, "telemetry.queue_depth", &snaps);
        name_culprit(
            &mut other,
            crate::metrics::names::SKETCH_DOMINANCE_SHARE,
            &snaps,
        );
        assert_eq!(other, "x");

        // A zero-weight leader (everyone caught up) names nobody.
        let mut p = PopulationSketch::new(SketchConfig { k: 4 });
        p.attribute(DIM_SUB_LAG, 1, 0);
        let (snaps, _) = p.drain(2_000_000);
        let mut quiet = String::from("back within bounds");
        name_culprit(&mut quiet, "sketch.sub_lag.skew", &snaps);
        assert_eq!(quiet, "back within bounds");
    }

    #[test]
    fn dimension_interning_round_trips() {
        for d in DIMENSIONS {
            assert_eq!(intern_dim(d), d);
        }
        assert_eq!(intern_dim("mystery"), "other");
    }
}
