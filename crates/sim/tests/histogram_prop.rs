//! Property tests for the fixed-bucket histogram: percentile estimates
//! must stay within the bucket scheme's documented error bound of the
//! exact sorted-slice answer, for arbitrary sample sets.

use gryphon_sim::Histogram;
use proptest::prelude::*;

/// Exact nearest-rank percentile on a sorted copy of the samples — the
/// oracle the histogram estimate is judged against.
fn exact_percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Buckets are quarter-powers of two, so an estimate can sit anywhere in
/// a bucket spanning a 2^0.25 ≈ 1.19× range; allow a little slack on top
/// for interpolation across the bucket the exact value borders.
const REL_TOLERANCE: f64 = 0.20;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn percentile_tracks_sorted_slice_oracle(
        samples in prop::collection::vec(0.001f64..1e9, 1..400),
        q in 0.0f64..1.0,
    ) {
        let mut h = Histogram::default();
        for &s in &samples {
            h.observe(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);

        let est = h.percentile(q).unwrap();
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(
            (min..=max).contains(&est),
            "estimate {} outside observed range [{}, {}]", est, min, max
        );

        let exact = exact_percentile(&samples, q);
        let rel = (est - exact).abs() / exact.abs().max(f64::MIN_POSITIVE);
        // The estimate may legitimately land one rank away from the
        // nearest-rank oracle (interpolation); accept if it is close to
        // either the exact answer or a neighboring sample rank.
        let n = samples.len() as f64;
        let lo = exact_percentile(&samples, (q - 1.5 / n).max(0.0));
        let hi = exact_percentile(&samples, (q + 1.5 / n).min(1.0));
        let rel_lo = (est - lo).abs() / lo.abs().max(f64::MIN_POSITIVE);
        let rel_hi = (est - hi).abs() / hi.abs().max(f64::MIN_POSITIVE);
        let within = rel < REL_TOLERANCE
            || rel_lo < REL_TOLERANCE
            || rel_hi < REL_TOLERANCE
            || (lo <= est && est <= hi);
        prop_assert!(
            within,
            "q={}: estimate {} too far from oracle {} (neighbors {} / {})",
            q, est, exact, lo, hi
        );
    }

    #[test]
    fn extremes_are_exact(samples in prop::collection::vec(0.001f64..1e9, 1..200)) {
        let mut h = Histogram::default();
        for &s in &samples {
            h.observe(s);
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.min().unwrap(), min);
        prop_assert_eq!(h.max().unwrap(), max);
        prop_assert_eq!(h.percentile(1.0).unwrap(), max);
        prop_assert!((h.sum() - samples.iter().sum::<f64>()).abs() < 1e-6 * h.sum().abs().max(1.0));
    }

    #[test]
    fn percentiles_are_monotone_in_q(
        samples in prop::collection::vec(0.001f64..1e6, 2..200),
    ) {
        let mut h = Histogram::default();
        for &s in &samples {
            h.observe(s);
        }
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let p = h.percentile(q).unwrap();
            prop_assert!(p >= last, "percentile regressed at q={}: {} < {}", q, p, last);
            last = p;
        }
    }
}
