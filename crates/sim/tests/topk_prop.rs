//! Property tests for the Space-Saving top-K sketch: estimates must obey
//! the classic guarantees against an exact-counting oracle for arbitrary
//! weighted update sequences (DESIGN.md §18).

use gryphon_sim::sketch::SpaceSaving;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// An update stream over a small entity universe so collisions and
/// displacements actually happen at the sketch capacities under test.
fn updates() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..24, 1u64..1_000), 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn estimates_bracket_the_exact_counts(seq in updates(), k in 1usize..10) {
        let mut sk = SpaceSaving::new(k);
        let mut exact: BTreeMap<u64, u64> = BTreeMap::new();
        for &(entity, w) in &seq {
            sk.offer(entity, w);
            *exact.entry(entity).or_default() += w;
        }

        let grand: u64 = seq.iter().map(|&(_, w)| w).sum();
        prop_assert_eq!(sk.total(), grand, "total weight is tracked exactly");

        // Every tracked entry overestimates, by at most its error bound:
        // true ∈ [count − err, count].
        for e in sk.top() {
            let truth = exact.get(&e.entity).copied().unwrap_or(0);
            prop_assert!(
                truth <= e.count,
                "entity {} estimate {} under-counts truth {}", e.entity, e.count, truth
            );
            prop_assert!(
                e.count - e.err <= truth,
                "entity {} lower bound {} exceeds truth {}", e.entity, e.count - e.err, truth
            );
        }

        // Displacement floor: counts sum to the total, so the minimum
        // tracked count cannot exceed total / k.
        prop_assert!(
            sk.min_count().saturating_mul(k as u64) <= grand,
            "min_count {} breaks the total/k bound (k={}, total={})",
            sk.min_count(), k, grand
        );

        // Guaranteed presence: any entity whose true weight beats the
        // displacement floor must still be tracked.
        let tracked: Vec<u64> = sk.top().iter().map(|e| e.entity).collect();
        for (&entity, &truth) in &exact {
            if truth > sk.min_count() {
                prop_assert!(
                    tracked.contains(&entity),
                    "entity {} (truth {}) missing despite beating min_count {}",
                    entity, truth, sk.min_count()
                );
            }
        }
    }

    #[test]
    fn small_universes_are_exact(seq in prop::collection::vec((0u64..6, 1u64..1_000), 1..200)) {
        // With capacity ≥ distinct entities nothing is ever displaced:
        // the sketch degenerates to exact counting with zero error.
        let mut sk = SpaceSaving::new(8);
        let mut exact: BTreeMap<u64, u64> = BTreeMap::new();
        for &(entity, w) in &seq {
            sk.offer(entity, w);
            *exact.entry(entity).or_default() += w;
        }
        let top = sk.top();
        prop_assert_eq!(top.len(), exact.len());
        for e in &top {
            prop_assert_eq!(e.err, 0, "no displacement → no error");
            prop_assert_eq!(e.count, exact[&e.entity]);
        }
        // Ranked order: count descending, entity ascending on ties.
        for w in top.windows(2) {
            prop_assert!(
                (w[0].count, std::cmp::Reverse(w[0].entity))
                    > (w[1].count, std::cmp::Reverse(w[1].entity))
            );
        }
    }

    #[test]
    fn replay_is_deterministic(seq in updates(), k in 1usize..10) {
        let run = |seq: &[(u64, u64)]| {
            let mut sk = SpaceSaving::new(k);
            for &(entity, w) in seq {
                sk.offer(entity, w);
            }
            sk.top()
        };
        prop_assert_eq!(run(&seq), run(&seq), "same stream must rank identically");
    }
}
