//! Offline stand-in for `proptest`.
//!
//! Reimplements the slice of the proptest API this workspace uses:
//! [`strategy::Strategy`] with `prop_map`, range/tuple/`Just`/string-regex
//! strategies, `prop::collection::{vec, btree_map}`, `prop::option::of`,
//! [`arbitrary::any`], the [`proptest!`]/[`prop_oneof!`]/`prop_assert*`
//! macros and [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate, deliberately accepted for an
//! offline build:
//!
//! * **No shrinking.** A failing case reports its index and seed (and
//!   panics with the body's assertion message); it is not minimized.
//! * **Derived seeds.** Each test function derives a fixed seed from its
//!   own name, so runs are deterministic and reproducible without a
//!   persistence file (`*.proptest-regressions` files are ignored).
//! * **Regex strategies** support the character-class subset actually
//!   used here (`[a-c]{1,3}`-style atoms), not full regex syntax.

pub mod test_runner {
    //! Case runner: config and deterministic RNG.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test whose name hashes to `seed`.
        pub fn for_case(seed: u64, case: u64) -> Self {
            TestRng {
                state: seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n == 0` returns 0.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a hash of a test name, used as its fixed base seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Prints the failing case's coordinates when a test body panics, so
    /// failures are reproducible despite the absence of shrinking.
    pub struct CaseGuard {
        /// Case index within the run.
        pub case: u64,
        /// Base seed of the test.
        pub seed: u64,
        /// Test name.
        pub name: &'static str,
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest stub: test `{}` failed at case {} (seed {:#x})",
                    self.name, self.case, self.seed
                );
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A generator of random values (no shrinking in this stub).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Type-erased sampler used by [`Union`] (what `prop_oneof!` builds).
    pub type Sampler<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// Weighted choice between same-valued strategies.
    pub struct Union<T> {
        arms: Vec<(u32, Sampler<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, sampler)` arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, Sampler<T>)>) -> Self {
            let total: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, sampler) in &self.arms {
                if pick < *w as u64 {
                    return sampler(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum checked in Union::new")
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple!(A: 0);
    impl_tuple!(A: 0, B: 1);
    impl_tuple!(A: 0, B: 1, C: 2);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

    // ---- string "regex" strategies ----

    /// One atom of the pattern subset: a set of char ranges repeated
    /// between `min` and `max` times.
    struct Atom {
        ranges: Vec<(char, char)>,
        min: u32,
        max: u32,
    }

    fn parse_pattern(pat: &str) -> Vec<Atom> {
        let mut chars = pat.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let ranges = if c == '[' {
                let mut ranges = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in pattern {pat:?}"));
                    if c == ']' {
                        if let Some(p) = prev {
                            ranges.push((p, p));
                        }
                        break;
                    }
                    if c == '-' && prev.is_some() && chars.peek() != Some(&']') {
                        let hi = chars.next().expect("range end");
                        ranges.push((prev.take().expect("range start"), hi));
                    } else {
                        if let Some(p) = prev.replace(c) {
                            ranges.push((p, p));
                        }
                    }
                }
                ranges
            } else {
                let lit = if c == '\\' {
                    chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pat:?}"))
                } else {
                    c
                };
                vec![(lit, lit)]
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("repeat lower bound"),
                        hi.parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = spec.parse().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push(Atom { ranges, min, max });
        }
        atoms
    }

    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in parse_pattern(self) {
                let reps = atom.min + rng.below((atom.max - atom.min + 1) as u64) as u32;
                let total: u64 = atom
                    .ranges
                    .iter()
                    .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                    .sum();
                for _ in 0..reps {
                    let mut pick = rng.below(total);
                    for &(lo, hi) in &atom.ranges {
                        let span = hi as u64 - lo as u64 + 1;
                        if pick < span {
                            out.push(
                                char::from_u32(lo as u32 + pick as u32)
                                    .expect("range within valid chars"),
                            );
                            break;
                        }
                        pick -= span;
                    }
                }
            }
            out
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Marker strategy for "any value of `T`"; see [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Uniform strategy over `T`'s whole domain.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            // Finite values spread over a wide range; avoids NaN/inf so
            // model-based tests don't trip on exotic bit patterns.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>`; see [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`; see [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Generates maps with *up to* the sampled number of entries
    /// (duplicate keys collapse, as in real proptest's minimum-size
    /// caveat).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.key.sample(rng), self.value.sample(rng));
            }
            out
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`; see [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` one time in four, `Some(inner)` otherwise (mirroring real
    /// proptest's default 75% `Some` weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Weighted (`w => strategy`) or uniform choice among strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        $crate::strategy::Union::new(vec![
            $({
                let strat = $strat;
                (
                    $weight as u32,
                    Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::sample(&strat, rng)
                    }) as $crate::strategy::Sampler<_>,
                )
            }),+
        ])
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

/// `assert!` under a name the proptest API exposes.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name the proptest API exposes.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a name the proptest API exposes.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a test running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal muncher for [`proptest!`]; expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let seed = $crate::test_runner::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases as u64 {
                let _guard = $crate::test_runner::CaseGuard {
                    case,
                    seed,
                    name: stringify!($name),
                };
                let mut rng = $crate::test_runner::TestRng::for_case(seed, case);
                $(
                    let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);
                )+
                $body
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_unions_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(1, 0);
        let s = prop_oneof![3 => 0u64..10, 1 => 90u64..100];
        let mut low = 0;
        for _ in 0..1_000 {
            let v = s.sample(&mut rng);
            assert!(v < 10 || (90u64..100).contains(&v));
            if v < 10 {
                low += 1;
            }
        }
        assert!(low > 600, "weighting skews toward the first arm: {low}");
    }

    #[test]
    fn string_pattern_subset() {
        let mut rng = crate::test_runner::TestRng::for_case(2, 0);
        for _ in 0..200 {
            let s = "k[0-9]{1,2}".sample(&mut rng);
            assert!(s.starts_with('k') && (2..=3).contains(&s.len()), "{s:?}");
            assert!(s[1..].bytes().all(|b| b.is_ascii_digit()));
            let t = "[a-c]{1,3}".sample(&mut rng);
            assert!((1..=3).contains(&t.len()));
            assert!(t.bytes().all(|b| (b'a'..=b'c').contains(&b)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_cases(v in prop::collection::vec(any::<u8>(), 0..5), flag in any::<bool>()) {
            prop_assert!(v.len() < 5);
            let _ = flag;
        }

        #[test]
        fn tuples_and_maps(pair in (0i64..4, prop::option::of(1u64..9))) {
            prop_assert!((0..4).contains(&pair.0));
            if let Some(x) = pair.1 {
                prop_assert!((1..9).contains(&x));
            }
        }
    }
}
