//! The baseline the paper argues against (§1): a message-queuing-style
//! system where
//!
//! * every SHB keeps a **persistent event log per durable subscriber**
//!   ([`PerSubscriberLog`]) — an event matching `n` subscribers is logged
//!   `n` times at that SHB (and once more at every SHB whose subscribers
//!   match it), and
//! * events are **store-and-forward** routed: each hop logs the event
//!   durably before forwarding ([`StoreForwardBroker`]), so end-to-end
//!   latency accumulates a disk sync per hop.
//!
//! Two experiments use this crate: the PFS microbenchmark (paper §5.1.2 —
//! PFS logs ≈25× less data and runs >5× faster than per-subscriber event
//! logging) and the end-to-end latency comparison (only-once logging at
//! the PHB vs a sync at every hop).
//!
//! # Examples
//!
//! ```
//! use gryphon_baseline::PerSubscriberLog;
//! use gryphon_storage::MemFactory;
//! use gryphon_types::{Event, PubendId, SubscriberId, Timestamp};
//!
//! let mut log = PerSubscriberLog::open(Box::new(MemFactory::new()), "mq")?;
//! let e = Event::builder(PubendId(0)).payload(vec![0u8; 250]).build_ref(Timestamp(5));
//! log.append(SubscriberId(1), &e)?;
//! log.append(SubscriberId(2), &e)?; // logged once *per subscriber*
//! log.sync()?;
//! assert_eq!(log.read_from(SubscriberId(1), Timestamp::ZERO)?.len(), 1);
//! # Ok::<(), gryphon_storage::StorageError>(())
//! ```

mod per_sub_log;
mod store_forward;

pub use per_sub_log::PerSubscriberLog;
pub use store_forward::{SfConfig, SfSubscriber, StoreForwardBroker};
