//! Store-and-forward broker chain (the latency baseline).
//!
//! Commercial MQ systems of the paper's era log an event durably at
//! *every* hop of a multi-broker network before forwarding it. This node
//! models that: on receiving an event it buffers it, and only after a
//! modeled group-commit latency forwards it downstream. A 5-hop chain
//! therefore pays ~5 disk syncs of latency, against Gryphon's single sync
//! at the PHB.

use gryphon_sim::{Node, NodeCtx, TimerKey};
use gryphon_types::{
    DeliveryKind, DeliveryMsg, Event, NetMsg, NodeId, PublishMsg, ServerMsg, SubscriberId,
    Timestamp,
};
use std::sync::Arc;

const T_COMMIT: TimerKey = TimerKey(0x5F01);

/// Configuration for a [`StoreForwardBroker`].
#[derive(Debug, Clone, Copy)]
pub struct SfConfig {
    /// Group-commit interval (buffer window).
    pub commit_interval_us: u64,
    /// Modeled durability latency per group commit (same disk model as
    /// the Gryphon PHB: 44 ms in the paper's setup).
    pub commit_latency_us: u64,
}

impl Default for SfConfig {
    fn default() -> Self {
        SfConfig {
            commit_interval_us: 4_000,
            commit_latency_us: 44_000,
        }
    }
}

/// One hop of an MQ-style store-and-forward chain.
///
/// Accepts [`NetMsg::Publish`] from upstream (publisher or previous hop),
/// assigns timestamps at the first hop, logs-then-forwards to the next
/// hop, and delivers to attached [`SfSubscriber`]s at the last hop.
#[derive(Debug)]
pub struct StoreForwardBroker {
    config: SfConfig,
    next_hop: Option<NodeId>,
    subscribers: Vec<(SubscriberId, NodeId)>,
    pending: Vec<PublishMsg>,
    commit_scheduled: bool,
    next_ts: u64,
    /// Events that have transited this hop.
    pub forwarded: u64,
}

impl StoreForwardBroker {
    /// Creates a hop.
    pub fn new(config: SfConfig) -> Self {
        StoreForwardBroker {
            config,
            next_hop: None,
            subscribers: Vec::new(),
            pending: Vec::new(),
            commit_scheduled: false,
            next_ts: 0,
            forwarded: 0,
        }
    }

    /// Sets the downstream hop.
    pub fn set_next_hop(&mut self, next: NodeId) {
        self.next_hop = Some(next);
    }

    /// Attaches a terminal subscriber.
    pub fn add_subscriber(&mut self, sub: SubscriberId, node: NodeId) {
        self.subscribers.push((sub, node));
    }
}

impl Node for StoreForwardBroker {
    fn on_message(&mut self, _from: NodeId, msg: NetMsg, ctx: &mut dyn NodeCtx) {
        let NetMsg::Publish(m) = msg else {
            return;
        };
        self.pending.push(m);
        if !self.commit_scheduled {
            self.commit_scheduled = true;
            ctx.set_timer(
                self.config.commit_interval_us + self.config.commit_latency_us,
                T_COMMIT,
            );
        }
    }

    fn on_timer(&mut self, key: TimerKey, ctx: &mut dyn NodeCtx) {
        if key != T_COMMIT {
            return;
        }
        self.commit_scheduled = false;
        for m in std::mem::take(&mut self.pending) {
            self.forwarded += 1;
            if let Some(next) = self.next_hop {
                ctx.send(next, NetMsg::Publish(m));
            } else {
                // Terminal hop: deliver to subscribers.
                self.next_ts += 1;
                let event = Arc::new(Event {
                    pubend: m.pubend,
                    ts: Timestamp(self.next_ts),
                    attrs: m.attrs,
                    payload: m.payload,
                });
                for &(sub, node) in &self.subscribers {
                    ctx.send(
                        node,
                        NetMsg::Server(ServerMsg::Deliver {
                            sub,
                            msg: DeliveryMsg {
                                pubend: event.pubend,
                                kind: DeliveryKind::Event(event.clone()),
                            },
                        }),
                    );
                }
            }
        }
    }
}

/// Terminal consumer for the store-and-forward chain: records end-to-end
/// latency from the `_sent_us` attribute.
#[derive(Debug, Default)]
pub struct SfSubscriber {
    /// Events received.
    pub events: u64,
    /// Sum of end-to-end latencies (µs) for averaging.
    pub latency_sum_us: u64,
}

impl SfSubscriber {
    /// Creates the consumer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean end-to-end latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        self.latency_sum_us as f64 / self.events as f64 / 1_000.0
    }
}

impl Node for SfSubscriber {
    fn on_message(&mut self, _from: NodeId, msg: NetMsg, ctx: &mut dyn NodeCtx) {
        if let NetMsg::Server(ServerMsg::Deliver { msg, .. }) = msg {
            if let DeliveryKind::Event(e) = &msg.kind {
                self.events += 1;
                if let Some(gryphon_types::AttrValue::Int(sent)) = e.attr("_sent_us") {
                    self.latency_sum_us += ctx.now_us().saturating_sub(*sent as u64);
                }
            }
        }
    }

    fn on_timer(&mut self, _key: TimerKey, _ctx: &mut dyn NodeCtx) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use gryphon_sim::Sim;

    #[test]
    fn five_hop_chain_accumulates_per_hop_latency() {
        let mut sim = Sim::new(1);
        let cfg = SfConfig {
            commit_interval_us: 1_000,
            commit_latency_us: 10_000,
        };
        let mut hops = Vec::new();
        for i in 0..5 {
            let h = sim.add_typed_node(&format!("hop{i}"), StoreForwardBroker::new(cfg));
            hops.push(h);
        }
        for w in hops.windows(2) {
            let (a, b) = (w[0], w[1]);
            sim.node(a).set_next_hop(b.id());
            sim.connect(a.id(), b.id(), 1_000);
        }
        let consumer = sim.add_typed_node("consumer", SfSubscriber::new());
        sim.node(hops[4])
            .add_subscriber(SubscriberId(1), consumer.id());
        sim.connect(hops[4].id(), consumer.id(), 500);
        // Inject 10 publishes with sent timestamps.
        for i in 0..10u64 {
            let mut attrs = gryphon_types::Attributes::new();
            let at = i * 2_000;
            attrs.insert("_sent_us".into(), (at as i64).into());
            sim.inject_ctrl(
                at,
                hops[0].id(),
                NetMsg::Publish(PublishMsg {
                    pubend: gryphon_types::PubendId(0),
                    attrs,
                    payload: bytes::Bytes::new(),
                }),
            );
        }
        sim.run_until(5_000_000);
        let c = sim.node_ref(consumer);
        assert_eq!(c.events, 10);
        // 5 hops × (1+10) ms commit + 4×1 ms links + client link ≥ 59 ms.
        let mean = c.mean_latency_ms();
        assert!(mean >= 55.0, "expected ≥5 commit latencies, got {mean} ms");
        // And each hop forwarded everything exactly once.
        for h in hops {
            assert_eq!(sim.node_ref(h).forwarded, 10);
        }
    }
}
