//! Per-subscriber persistent event logs (the MQ baseline storage engine).

use gryphon_storage::{
    decode_event, encode_event, LogIndex, LogVolume, MediaFactory, StorageError, StreamId,
    VolumeConfig, VolumeStats,
};
use gryphon_types::{EventRef, SubscriberId, Timestamp};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A persistent event log per durable subscriber, multiplexed on one
/// [`LogVolume`] (one stream per subscriber).
///
/// This is the "obvious, but undesirable" design of the paper's §1: an
/// event is logged once **per matching subscriber**, so the write volume
/// is `Σ_s |matching events| × event size` instead of the PFS's
/// `8 + 16·n` bytes per matched timestamp.
pub struct PerSubscriberLog {
    volume: LogVolume,
    /// sub → stream id (dense assignment).
    streams: HashMap<SubscriberId, StreamId>,
    next_stream: u32,
    /// (sub) → ts → record index, for ack-driven chopping and reads.
    by_ts: HashMap<SubscriberId, BTreeMap<Timestamp, LogIndex>>,
}

impl std::fmt::Debug for PerSubscriberLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerSubscriberLog")
            .field("subscribers", &self.streams.len())
            .finish()
    }
}

impl PerSubscriberLog {
    /// Opens (recovering) or creates the log named `name`.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or non-tail corruption.
    pub fn open(factory: Box<dyn MediaFactory>, name: &str) -> Result<Self, StorageError> {
        let volume = LogVolume::open(factory, name, VolumeConfig::default())?;
        let mut log = PerSubscriberLog {
            volume,
            streams: HashMap::new(),
            next_stream: 0,
            by_ts: HashMap::new(),
        };
        // Recovery: stream→subscriber mapping is rebuilt from record
        // contents (each record is a self-describing encoded event; the
        // subscriber id is the stream id assigned at first append, which
        // we recover by scanning).
        for stream in log.volume.stream_ids() {
            let records = log.volume.read_all(stream)?;
            for (idx, data) in &records {
                let event = decode_event(&data[8..])?;
                let sub = SubscriberId(u64::from_le_bytes(
                    data[..8].try_into().expect("sub header"),
                ));
                log.streams.insert(sub, stream);
                log.next_stream = log.next_stream.max(stream.0 + 1);
                log.by_ts.entry(sub).or_default().insert(event.ts, *idx);
            }
        }
        Ok(log)
    }

    fn stream_for(&mut self, sub: SubscriberId) -> StreamId {
        if let Some(&s) = self.streams.get(&sub) {
            return s;
        }
        let s = StreamId(self.next_stream);
        self.next_stream += 1;
        self.streams.insert(sub, s);
        s
    }

    /// Appends `event` to `sub`'s log (full event bytes — the baseline's
    /// cost).
    ///
    /// # Errors
    ///
    /// Returns an error if the volume fails.
    pub fn append(&mut self, sub: SubscriberId, event: &EventRef) -> Result<(), StorageError> {
        let stream = self.stream_for(sub);
        let mut data = Vec::with_capacity(8 + event.encoded_len());
        data.extend_from_slice(&sub.0.to_le_bytes());
        data.extend_from_slice(&encode_event(event));
        let idx = self.volume.append(stream, &data)?;
        self.by_ts.entry(sub).or_default().insert(event.ts, idx);
        Ok(())
    }

    /// Group-commit point.
    ///
    /// # Errors
    ///
    /// Returns an error if the flush fails.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.volume.sync()
    }

    /// Acknowledgment: discards `sub`'s events with `ts ≤ upto`.
    ///
    /// # Errors
    ///
    /// Returns an error if the volume fails.
    pub fn ack(&mut self, sub: SubscriberId, upto: Timestamp) -> Result<(), StorageError> {
        let Some(&stream) = self.streams.get(&sub) else {
            return Ok(());
        };
        let Some(map) = self.by_ts.get_mut(&sub) else {
            return Ok(());
        };
        let boundary = map
            .range(upto.next()..)
            .next()
            .map(|(_, &i)| i)
            .unwrap_or_else(|| self.volume.next_index(stream));
        let dead: Vec<Timestamp> = map.range(..=upto).map(|(&t, _)| t).collect();
        for t in dead {
            map.remove(&t);
        }
        self.volume.chop(stream, boundary)
    }

    /// Reads `sub`'s logged events with `ts > from`, ascending — the
    /// baseline's catchup path (no refiltering needed, but every event
    /// was stored per subscriber to make this possible).
    ///
    /// # Errors
    ///
    /// Returns an error if the volume fails or a record fails to decode.
    pub fn read_from(
        &mut self,
        sub: SubscriberId,
        from: Timestamp,
    ) -> Result<Vec<EventRef>, StorageError> {
        let Some(&stream) = self.streams.get(&sub) else {
            return Ok(Vec::new());
        };
        let indexes: Vec<LogIndex> = match self.by_ts.get(&sub) {
            Some(map) => map.range(from.next()..).map(|(_, &i)| i).collect(),
            None => return Ok(Vec::new()),
        };
        let mut out = Vec::with_capacity(indexes.len());
        for idx in indexes {
            if let Some(data) = self.volume.read(stream, idx)? {
                out.push(Arc::new(decode_event(&data[8..])?));
            }
        }
        Ok(out)
    }

    /// Pending (unacknowledged) events for `sub`.
    pub fn pending(&self, sub: SubscriberId) -> usize {
        self.by_ts.get(&sub).map(|m| m.len()).unwrap_or(0)
    }

    /// Volume counters — the microbenchmark compares `payload_bytes`
    /// against the PFS's.
    pub fn stats(&self) -> VolumeStats {
        self.volume.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gryphon_storage::MemFactory;
    use gryphon_types::{Event, PubendId};

    fn ev(ts: u64) -> EventRef {
        Event::builder(PubendId(0))
            .attr("n", ts as i64)
            .payload(vec![0u8; 64])
            .build_ref(Timestamp(ts))
    }

    #[test]
    fn append_read_per_subscriber() {
        let mut log = PerSubscriberLog::open(Box::new(MemFactory::new()), "mq").unwrap();
        let (a, b) = (SubscriberId(1), SubscriberId(2));
        log.append(a, &ev(1)).unwrap();
        log.append(b, &ev(1)).unwrap();
        log.append(a, &ev(2)).unwrap();
        assert_eq!(log.read_from(a, Timestamp::ZERO).unwrap().len(), 2);
        assert_eq!(log.read_from(b, Timestamp::ZERO).unwrap().len(), 1);
        assert_eq!(log.read_from(a, Timestamp(1)).unwrap().len(), 1);
        assert_eq!(log.pending(a), 2);
    }

    #[test]
    fn ack_discards_prefix() {
        let mut log = PerSubscriberLog::open(Box::new(MemFactory::new()), "mq").unwrap();
        let s = SubscriberId(1);
        for t in 1..=10 {
            log.append(s, &ev(t)).unwrap();
        }
        log.ack(s, Timestamp(7)).unwrap();
        let rest = log.read_from(s, Timestamp::ZERO).unwrap();
        assert_eq!(rest.len(), 3);
        assert_eq!(rest[0].ts, Timestamp(8));
        assert_eq!(log.pending(s), 3);
    }

    #[test]
    fn recovery_restores_streams_and_events() {
        let f = MemFactory::new();
        {
            let mut log = PerSubscriberLog::open(Box::new(f.clone()), "mq").unwrap();
            log.append(SubscriberId(1), &ev(1)).unwrap();
            log.append(SubscriberId(2), &ev(2)).unwrap();
            log.ack(SubscriberId(1), Timestamp(1)).unwrap();
            log.append(SubscriberId(1), &ev(3)).unwrap();
            log.sync().unwrap();
        }
        let mut log = PerSubscriberLog::open(Box::new(f), "mq").unwrap();
        let a = log.read_from(SubscriberId(1), Timestamp::ZERO).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].ts, Timestamp(3));
        assert_eq!(
            log.read_from(SubscriberId(2), Timestamp::ZERO)
                .unwrap()
                .len(),
            1
        );
        // New appends go to the right streams after recovery.
        log.append(SubscriberId(2), &ev(9)).unwrap();
        assert_eq!(
            log.read_from(SubscriberId(2), Timestamp::ZERO)
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn bytes_scale_with_matching_subscribers() {
        // The baseline's defining cost: n matching subscribers ⇒ n full
        // event copies.
        let mut log = PerSubscriberLog::open(Box::new(MemFactory::new()), "mq").unwrap();
        let e = ev(1);
        for s in 0..25u64 {
            log.append(SubscriberId(s), &e).unwrap();
        }
        let bytes = log.stats().payload_bytes;
        assert!(bytes as usize >= 25 * e.encoded_len());
    }
}
