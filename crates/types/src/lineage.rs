//! Delivery-lineage span keys.
//!
//! The paper's tick model already gives every persistent event a unique
//! identity: the pubend it was published to and the monotone timestamp
//! that pubend assigned it (§2). Lineage tracking therefore needs **no
//! new wire bytes** — every stage of an event's life (log, forward,
//! ingest, delivery) already carries `(pubend, timestamp)`, and a
//! [`LineageKey`] derived from that pair names the event's span in every
//! layer that observes it.

use crate::ids::PubendId;
use crate::time::Timestamp;

/// The span key of one persistent event: `(pubend, timestamp)`.
///
/// Ordered pubend-major, which groups a pubend's ticks contiguously in
/// sorted span maps (matching the per-pubend sharding of the threaded
/// runtime, where one worker owns every stage of a pubend's events).
///
/// # Examples
///
/// ```
/// use gryphon_types::{LineageKey, PubendId, Timestamp};
///
/// let k = LineageKey::new(PubendId(3), Timestamp(42));
/// assert_eq!(LineageKey::unpack(k.pack()), k);
/// assert_eq!(k.to_string(), "pubend-3@t42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineageKey {
    /// The pubend that assigned the timestamp.
    pub pubend: PubendId,
    /// The event's tick on that pubend's stream.
    pub ts: Timestamp,
}

impl LineageKey {
    /// Creates the span key for the event at `ts` on `pubend`.
    pub fn new(pubend: PubendId, ts: Timestamp) -> Self {
        LineageKey { pubend, ts }
    }

    /// Packs the key into a single `u128` (`pubend` in the high 64 bits)
    /// preserving `Ord`: useful as a dense map/set key or a compact
    /// correlation id in dumps.
    pub fn pack(self) -> u128 {
        ((self.pubend.0 as u128) << 64) | self.ts.0 as u128
    }

    /// Inverse of [`LineageKey::pack`].
    pub fn unpack(packed: u128) -> Self {
        LineageKey {
            pubend: PubendId((packed >> 64) as u32),
            ts: Timestamp(packed as u64),
        }
    }
}

impl std::fmt::Display for LineageKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.pubend, self.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrips_and_preserves_order() {
        let keys = [
            LineageKey::new(PubendId(0), Timestamp(0)),
            LineageKey::new(PubendId(0), Timestamp(u64::MAX)),
            LineageKey::new(PubendId(1), Timestamp(0)),
            LineageKey::new(PubendId(u32::MAX), Timestamp(7)),
        ];
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[0].pack() < w[1].pack());
        }
        for k in keys {
            assert_eq!(LineageKey::unpack(k.pack()), k);
        }
    }

    #[test]
    fn display_names_both_halves() {
        let k = LineageKey::new(PubendId(7), Timestamp(19));
        assert_eq!(k.to_string(), "pubend-7@t19");
    }
}
