//! Knowledge-tick kinds (paper §3).

use serde::{Deserialize, Serialize};

/// The four knowledge-stream tick states.
///
/// A knowledge stream conceptually assigns one of these to *every* tick of
/// a pubend's time line:
///
/// * `Q` — *unknown*: nothing is known yet about this tick (it is the
///   default state and drives nack generation);
/// * `S` — *silence*: there was no event at this tick, or the event was
///   filtered upstream and is irrelevant downstream;
/// * `D` — *data*: an application event occupies this tick;
/// * `L` — *lost*: the pubend has discarded whether this tick was `S` or
///   `D` (early release). Reconnecting subscribers whose checkpoint falls
///   inside an `L` prefix receive **gap** messages.
///
/// # Examples
///
/// ```
/// use gryphon_types::TickKind;
/// assert!(TickKind::Q.is_unknown());
/// assert!(TickKind::S.is_known());
/// assert_eq!(TickKind::D.to_string(), "D");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TickKind {
    /// Unknown.
    Q,
    /// Silence (no relevant event).
    S,
    /// Data (an event).
    D,
    /// Lost (discarded by early release).
    L,
}

impl TickKind {
    /// `true` for `Q`.
    #[inline]
    pub fn is_unknown(self) -> bool {
        self == TickKind::Q
    }

    /// `true` for everything except `Q`.
    #[inline]
    pub fn is_known(self) -> bool {
        self != TickKind::Q
    }
}

impl std::fmt::Display for TickKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TickKind::Q => "Q",
            TickKind::S => "S",
            TickKind::D => "D",
            TickKind::L => "L",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vs_unknown_partition() {
        for k in [TickKind::Q, TickKind::S, TickKind::D, TickKind::L] {
            assert_ne!(k.is_known(), k.is_unknown());
        }
    }

    #[test]
    fn display_single_letters() {
        assert_eq!(TickKind::Q.to_string(), "Q");
        assert_eq!(TickKind::L.to_string(), "L");
    }
}
