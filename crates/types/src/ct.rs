//! Checkpoint Tokens — the per-subscriber vector clock of §2.
//!
//! A durable subscriber holds one timestamp per pubend: the latest tick for
//! which it has consumed (and is willing to acknowledge) all preceding
//! messages. On reconnection it presents the token as its resumption point.
//! Storing the token client-side (rather than in the messaging system)
//! avoids distributed transactions; the price is that a client that loses
//! its token and reconnects with an older one may receive gap messages in
//! lieu of events it already acknowledged.

use crate::{PubendId, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A vector clock of `(pubend, timestamp)` pairs.
///
/// Missing entries are implicitly [`Timestamp::ZERO`] — "from the beginning
/// of the stream". All mutation is monotone: [`CheckpointToken::advance`]
/// ignores regressions, so a token can be merged from out-of-order
/// acknowledgments safely.
///
/// # Examples
///
/// ```
/// use gryphon_types::{CheckpointToken, PubendId, Timestamp};
///
/// let mut ct = CheckpointToken::new();
/// ct.advance(PubendId(1), Timestamp(10));
/// ct.advance(PubendId(2), Timestamp(5));
///
/// let mut other = CheckpointToken::new();
/// other.advance(PubendId(1), Timestamp(7));
/// other.advance(PubendId(3), Timestamp(9));
///
/// ct.merge(&other);
/// assert_eq!(ct.get(PubendId(1)), Timestamp(10)); // kept the max
/// assert_eq!(ct.get(PubendId(3)), Timestamp(9));  // learned new entry
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CheckpointToken {
    entries: BTreeMap<PubendId, Timestamp>,
}

impl CheckpointToken {
    /// Creates an empty token (every pubend at [`Timestamp::ZERO`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `CT(s, p)` — the token's component for `pubend`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_types::{CheckpointToken, PubendId, Timestamp};
    /// let ct = CheckpointToken::new();
    /// assert_eq!(ct.get(PubendId(0)), Timestamp::ZERO);
    /// ```
    pub fn get(&self, pubend: PubendId) -> Timestamp {
        self.entries
            .get(&pubend)
            .copied()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Advances the component for `pubend` to `ts` if that is an advance;
    /// returns `true` when the token changed.
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_types::{CheckpointToken, PubendId, Timestamp};
    /// let mut ct = CheckpointToken::new();
    /// assert!(ct.advance(PubendId(0), Timestamp(4)));
    /// assert!(!ct.advance(PubendId(0), Timestamp(3)));
    /// ```
    pub fn advance(&mut self, pubend: PubendId, ts: Timestamp) -> bool {
        let cur = self.entries.entry(pubend).or_insert(Timestamp::ZERO);
        if ts > *cur {
            *cur = ts;
            true
        } else {
            false
        }
    }

    /// Component-wise maximum with `other`.
    pub fn merge(&mut self, other: &CheckpointToken) {
        for (&p, &t) in &other.entries {
            self.advance(p, t);
        }
    }

    /// `true` when every component of `self` is ≤ the corresponding
    /// component of `other`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_types::{CheckpointToken, PubendId, Timestamp};
    /// let mut a = CheckpointToken::new();
    /// a.advance(PubendId(0), Timestamp(3));
    /// let mut b = a.clone();
    /// b.advance(PubendId(0), Timestamp(5));
    /// assert!(a.dominated_by(&b));
    /// assert!(!b.dominated_by(&a));
    /// ```
    pub fn dominated_by(&self, other: &CheckpointToken) -> bool {
        self.entries.iter().all(|(&p, &t)| t <= other.get(p))
    }

    /// Iterates the explicitly tracked `(pubend, timestamp)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PubendId, Timestamp)> + '_ {
        self.entries.iter().map(|(&p, &t)| (p, t))
    }

    /// Number of pubends with a non-default component.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no component has ever advanced.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds a token from explicit pairs.
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_types::{CheckpointToken, PubendId, Timestamp};
    /// let ct = CheckpointToken::from_pairs([(PubendId(0), Timestamp(3))]);
    /// assert_eq!(ct.get(PubendId(0)), Timestamp(3));
    /// ```
    pub fn from_pairs(pairs: impl IntoIterator<Item = (PubendId, Timestamp)>) -> Self {
        let mut ct = Self::new();
        for (p, t) in pairs {
            ct.advance(p, t);
        }
        ct
    }
}

impl FromIterator<(PubendId, Timestamp)> for CheckpointToken {
    fn from_iter<I: IntoIterator<Item = (PubendId, Timestamp)>>(iter: I) -> Self {
        Self::from_pairs(iter)
    }
}

impl Extend<(PubendId, Timestamp)> for CheckpointToken {
    fn extend<I: IntoIterator<Item = (PubendId, Timestamp)>>(&mut self, iter: I) {
        for (p, t) in iter {
            self.advance(p, t);
        }
    }
}

impl std::fmt::Display for CheckpointToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CT{{")?;
        for (i, (p, t)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}:{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_componentwise_max() {
        let a = CheckpointToken::from_pairs([
            (PubendId(0), Timestamp(10)),
            (PubendId(1), Timestamp(2)),
        ]);
        let b = CheckpointToken::from_pairs([
            (PubendId(0), Timestamp(4)),
            (PubendId(1), Timestamp(8)),
            (PubendId(2), Timestamp(1)),
        ]);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.get(PubendId(0)), Timestamp(10));
        assert_eq!(m.get(PubendId(1)), Timestamp(8));
        assert_eq!(m.get(PubendId(2)), Timestamp(1));
        assert!(a.dominated_by(&m));
        assert!(b.dominated_by(&m));
    }

    #[test]
    fn advance_never_regresses() {
        let mut ct = CheckpointToken::new();
        ct.advance(PubendId(0), Timestamp(5));
        assert!(!ct.advance(PubendId(0), Timestamp(5)));
        assert!(!ct.advance(PubendId(0), Timestamp(1)));
        assert_eq!(ct.get(PubendId(0)), Timestamp(5));
    }

    #[test]
    fn domination_is_reflexive_and_respects_missing_entries() {
        let ct = CheckpointToken::from_pairs([(PubendId(0), Timestamp(5))]);
        assert!(ct.dominated_by(&ct));
        let empty = CheckpointToken::new();
        assert!(empty.dominated_by(&ct));
        assert!(!ct.dominated_by(&empty));
    }

    #[test]
    fn collect_and_extend() {
        let mut ct: CheckpointToken = [(PubendId(0), Timestamp(1))].into_iter().collect();
        ct.extend([(PubendId(0), Timestamp(9)), (PubendId(4), Timestamp(2))]);
        assert_eq!(ct.get(PubendId(0)), Timestamp(9));
        assert_eq!(ct.len(), 2);
    }

    #[test]
    fn display_lists_components() {
        let ct = CheckpointToken::from_pairs([(PubendId(0), Timestamp(1))]);
        assert_eq!(ct.to_string(), "CT{pubend-0:t1}");
    }
}
