//! Pubend timestamps ("tick milliseconds").
//!
//! Conceptually a pubend stream has a value for *every* time tick, whether
//! an event was published at that tick or not (paper §2). Ticks are
//! fine-grained enough that no two events on the same pubend share one; we
//! use one tick per virtual millisecond, with the pubend bumping the counter
//! when two publishes land in the same millisecond.

use serde::{Deserialize, Serialize};

/// A position on a pubend's tick stream, in *tick milliseconds*.
///
/// Timestamps are totally ordered and support saturating arithmetic for
/// window computations. `Timestamp(0)` is the origin of every stream; the
/// first deliverable tick is `Timestamp(1)` (so an "everything before t"
/// prefix can be expressed as `..=t-1` without underflow).
///
/// # Examples
///
/// ```
/// use gryphon_types::Timestamp;
/// let t = Timestamp(100);
/// assert_eq!(t.saturating_sub(Timestamp(30)), 70);
/// assert_eq!(t + 5, Timestamp(105));
/// assert!(Timestamp::ZERO < t);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The stream origin: no event ever carries this timestamp.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The maximum representable tick; used for open-ended ranges.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Returns the raw tick-millisecond count.
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_types::Timestamp;
    /// assert_eq!(Timestamp(7).ticks(), 7);
    /// ```
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Difference in ticks, saturating at zero.
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_types::Timestamp;
    /// assert_eq!(Timestamp(5).saturating_sub(Timestamp(9)), 0);
    /// ```
    #[inline]
    pub fn saturating_sub(self, other: Timestamp) -> u64 {
        self.0.saturating_sub(other.0)
    }

    /// The immediately following tick, saturating at [`Timestamp::MAX`].
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_types::Timestamp;
    /// assert_eq!(Timestamp(5).next(), Timestamp(6));
    /// assert_eq!(Timestamp::MAX.next(), Timestamp::MAX);
    /// ```
    #[inline]
    pub fn next(self) -> Timestamp {
        Timestamp(self.0.saturating_add(1))
    }

    /// The immediately preceding tick, saturating at [`Timestamp::ZERO`].
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_types::Timestamp;
    /// assert_eq!(Timestamp(5).prev(), Timestamp(4));
    /// assert_eq!(Timestamp::ZERO.prev(), Timestamp::ZERO);
    /// ```
    #[inline]
    pub fn prev(self) -> Timestamp {
        Timestamp(self.0.saturating_sub(1))
    }

    /// Returns the larger of `self` and `other`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_types::Timestamp;
    /// assert_eq!(Timestamp(3).max(Timestamp(9)), Timestamp(9));
    /// ```
    #[inline]
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of `self` and `other`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_types::Timestamp;
    /// assert_eq!(Timestamp(3).min(Timestamp(9)), Timestamp(3));
    /// ```
    #[inline]
    pub fn min(self, other: Timestamp) -> Timestamp {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl std::ops::Add<u64> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(rhs))
    }
}

impl std::ops::Sub<u64> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, rhs: u64) -> Timestamp {
        Timestamp(self.0.saturating_sub(rhs))
    }
}

impl From<u64> for Timestamp {
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Timestamp::MAX + 1, Timestamp::MAX);
        assert_eq!(Timestamp(0) - 1, Timestamp(0));
        assert_eq!(Timestamp(10) - 3, Timestamp(7));
    }

    #[test]
    fn ordering_and_minmax() {
        assert!(Timestamp(1) < Timestamp(2));
        assert_eq!(Timestamp(1).max(Timestamp(2)), Timestamp(2));
        assert_eq!(Timestamp(1).min(Timestamp(2)), Timestamp(1));
    }

    #[test]
    fn next_prev_roundtrip() {
        let t = Timestamp(41);
        assert_eq!(t.next().prev(), t);
    }

    #[test]
    fn display() {
        assert_eq!(Timestamp(12).to_string(), "t12");
    }
}
