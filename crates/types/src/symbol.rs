//! Interned attribute names.
//!
//! Content-based pub/sub systems draw attribute names from a small, slowly
//! growing universe (the paper's workloads use a handful: `class`, `_seq`,
//! …), yet the matching hot path compares and hashes them for every event.
//! Interning turns each distinct name into a dense [`SymbolId`] exactly
//! once, after which:
//!
//! * equality and hashing are integer operations (no string walks);
//! * matching engines can replace per-event hash maps with counter arrays
//!   indexed by symbol;
//! * the name's bytes live forever in the process-wide table, so
//!   [`AttrName::as_str`] is a free `&'static str` — no locks, no copies.
//!
//! Interned strings are deliberately leaked: the name universe is bounded
//! in practice and a broker process keeps every subscription's attribute
//! names alive for its lifetime anyway.
//!
//! # Examples
//!
//! ```
//! use gryphon_types::AttrName;
//!
//! let a = AttrName::from("class");
//! let b = AttrName::from("class");
//! assert_eq!(a, b);
//! assert_eq!(a.sym(), b.sym());
//! assert_eq!(a.as_str(), "class");
//! ```

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// Dense identifier of an interned attribute name.
///
/// Ids are assigned in interning order starting from 0, so they index
/// naturally into per-symbol arrays (the matching engine's counter
/// scratch). Two `SymbolId`s are equal iff their names are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(u32);

impl SymbolId {
    /// The id as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interned attribute name: a [`SymbolId`] plus the leaked name bytes.
///
/// `Copy`, pointer-sized-ish, and cheap in every direction: equality and
/// [`Hash`] use the symbol id (integer ops), while [`Ord`] compares the
/// underlying strings so ordered containers keyed by `AttrName` iterate
/// in name order regardless of interning order — which keeps event
/// attribute iteration deterministic across runs and shard counts.
#[derive(Clone, Copy)]
pub struct AttrName {
    sym: SymbolId,
    name: &'static str,
}

struct Interner {
    by_name: HashMap<&'static str, AttrName>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            by_name: HashMap::new(),
        })
    })
}

impl AttrName {
    /// Interns `name`, returning its canonical [`AttrName`].
    ///
    /// The first interning of a distinct name leaks one copy of it and
    /// assigns the next [`SymbolId`]; later calls are a read-locked hash
    /// lookup.
    pub fn intern(name: &str) -> AttrName {
        let lock = interner();
        if let Some(&a) = lock.read().expect("interner poisoned").by_name.get(name) {
            return a;
        }
        let mut w = lock.write().expect("interner poisoned");
        if let Some(&a) = w.by_name.get(name) {
            return a; // raced: another thread interned it first
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let a = AttrName {
            sym: SymbolId(w.by_name.len() as u32),
            name: leaked,
        };
        w.by_name.insert(leaked, a);
        a
    }

    /// Looks `name` up **without** interning it: `None` if the name has
    /// never been interned. Use this on query paths fed by external input
    /// (e.g. [`Event::attr`](crate::Event::attr)) so unbounded garbage
    /// names cannot grow the table.
    pub fn lookup(name: &str) -> Option<AttrName> {
        interner()
            .read()
            .expect("interner poisoned")
            .by_name
            .get(name)
            .copied()
    }

    /// Number of distinct names interned so far (diagnostics / memory
    /// accounting).
    pub fn interned_count() -> usize {
        interner().read().expect("interner poisoned").by_name.len()
    }

    /// The dense symbol id.
    pub fn sym(self) -> SymbolId {
        self.sym
    }

    /// The name itself; free (`&'static str`, no locking).
    pub fn as_str(self) -> &'static str {
        self.name
    }
}

impl PartialEq for AttrName {
    fn eq(&self, other: &Self) -> bool {
        self.sym == other.sym
    }
}

impl Eq for AttrName {}

impl std::hash::Hash for AttrName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.sym.hash(state);
    }
}

// Order by name, not id: containers keyed by AttrName must iterate in an
// order independent of interning order (determinism across processes).
impl PartialOrd for AttrName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for AttrName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.sym == other.sym {
            return std::cmp::Ordering::Equal;
        }
        self.name.cmp(other.name)
    }
}

impl std::fmt::Debug for AttrName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.name)
    }
}

impl std::fmt::Display for AttrName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name)
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> Self {
        AttrName::intern(s)
    }
}

impl From<&String> for AttrName {
    fn from(s: &String) -> Self {
        AttrName::intern(s)
    }
}

impl From<String> for AttrName {
    fn from(s: String) -> Self {
        AttrName::intern(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = AttrName::intern("test_sym_idem");
        let b = AttrName::intern("test_sym_idem");
        assert_eq!(a, b);
        assert_eq!(a.sym(), b.sym());
        assert_eq!(a.as_str(), "test_sym_idem");
        // The leaked strs are the same allocation.
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        let a = AttrName::intern("test_sym_a");
        let b = AttrName::intern("test_sym_b");
        assert_ne!(a, b);
        assert_ne!(a.sym(), b.sym());
    }

    #[test]
    fn lookup_does_not_intern() {
        let before = AttrName::interned_count();
        assert!(AttrName::lookup("test_sym_never_interned_xyzzy").is_none());
        assert_eq!(AttrName::interned_count(), before);
        let a = AttrName::intern("test_sym_lookup");
        assert_eq!(AttrName::lookup("test_sym_lookup"), Some(a));
    }

    #[test]
    fn order_follows_names() {
        let z = AttrName::intern("test_sym_zz");
        let a = AttrName::intern("test_sym_aa");
        // `z` was interned first (smaller id) but still sorts after `a`.
        assert!(a < z);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn hash_follows_symbol() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(AttrName::intern("test_sym_h1"));
        set.insert(AttrName::intern("test_sym_h1"));
        set.insert(AttrName::intern("test_sym_h2"));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_and_debug() {
        let a = AttrName::intern("test_sym_disp");
        assert_eq!(a.to_string(), "test_sym_disp");
        assert_eq!(format!("{a:?}"), "\"test_sym_disp\"");
    }

    #[test]
    fn concurrent_interning_converges() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| AttrName::intern("test_sym_race")))
            .collect();
        let ids: Vec<SymbolId> = handles
            .into_iter()
            .map(|h| h.join().unwrap().sym())
            .collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
