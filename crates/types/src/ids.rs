//! Identifier newtypes.
//!
//! Newtypes keep pubends, brokers, nodes and subscribers statically distinct
//! (they are all integers on the wire).

use serde::{Deserialize, Serialize};

/// Identifier of a publishing endpoint (pubend).
///
/// Each publisher hosting broker (PHB) maintains one or more pubends; every
/// persistent event is assigned to exactly one pubend and receives a
/// monotone timestamp on that pubend's stream (paper §2).
///
/// # Examples
///
/// ```
/// use gryphon_types::PubendId;
/// let p = PubendId(3);
/// assert_eq!(p.to_string(), "pubend-3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PubendId(pub u32);

impl std::fmt::Display for PubendId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pubend-{}", self.0)
    }
}

/// Identifier of a broker in the overlay network.
///
/// # Examples
///
/// ```
/// use gryphon_types::BrokerId;
/// assert_eq!(BrokerId(1).to_string(), "broker-1");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BrokerId(pub u32);

impl std::fmt::Display for BrokerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "broker-{}", self.0)
    }
}

/// Identifier of any node participating in a runtime (broker or client).
///
/// Node ids are assigned by the runtime ([`gryphon-sim`] or `gryphon-net`)
/// when a node is registered, and are used as message source/destination
/// addresses.
///
/// [`gryphon-sim`]: https://docs.rs/gryphon-sim
///
/// # Examples
///
/// ```
/// use gryphon_types::NodeId;
/// assert_eq!(NodeId(7).to_string(), "node-7");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Identifier of a durable subscription.
///
/// In the paper's model a durable subscription survives disconnections of
/// the subscribing application; the id names the *subscription*, and a
/// reconnecting client presents it together with its [`CheckpointToken`].
///
/// [`CheckpointToken`]: crate::CheckpointToken
///
/// # Examples
///
/// ```
/// use gryphon_types::SubscriberId;
/// assert_eq!(SubscriberId(42).to_string(), "sub-42");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SubscriberId(pub u64);

impl std::fmt::Display for SubscriberId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sub-{}", self.0)
    }
}

/// Dense slot of a durable subscription inside one SHB's subscriber
/// slab (`SubscriberTable` in `gryphon`).
///
/// A slot is the *volatile* twin of a [`SubscriberId`]: assigned when the
/// subscription is registered on a broker, recycled through a free list
/// when it unsubscribes, and never written to disk or the wire (slot
/// assignment is rebuilt from the durable subscription set on recovery).
/// Interior broker paths — constream delivery, catchup pumping, PFS
/// backpointer resolution — carry slots and index the slab directly; the
/// id→slot hash lookup happens only at the edges (connect, subscribe,
/// ack ingress).
///
/// The `generation` makes recycled indices safe: it is bumped every time
/// the index is returned to the free list, so a stale `SubSlot` held
/// across an unsubscribe (e.g. by a pending timer) can never alias the
/// slot's next tenant — the slab rejects the mismatched generation.
///
/// # Examples
///
/// ```
/// use gryphon_types::SubSlot;
/// let s = SubSlot::new(3, 1);
/// assert_eq!(s.index(), 3);
/// assert_eq!(s.generation(), 1);
/// assert_eq!(s.to_string(), "slot-3g1");
/// assert_ne!(s, SubSlot::new(3, 2), "recycled slot is a different slot");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SubSlot {
    index: u32,
    generation: u32,
}

impl SubSlot {
    /// Builds a slot from its slab index and generation stamp.
    pub const fn new(index: u32, generation: u32) -> Self {
        SubSlot { index, generation }
    }

    /// The dense slab index.
    pub const fn index(self) -> u32 {
        self.index
    }

    /// The free-list generation stamp this slot was assigned under.
    pub const fn generation(self) -> u32 {
        self.generation
    }
}

impl std::fmt::Display for SubSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "slot-{}g{}", self.index, self.generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ids_order_and_hash() {
        let mut set = BTreeSet::new();
        set.insert(PubendId(2));
        set.insert(PubendId(1));
        set.insert(PubendId(2));
        assert_eq!(set.len(), 2);
        assert_eq!(set.iter().next(), Some(&PubendId(1)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(0).to_string(), "node-0");
        assert_eq!(SubscriberId(9).to_string(), "sub-9");
        assert_eq!(BrokerId(3).to_string(), "broker-3");
    }

    #[test]
    fn defaults_are_zero() {
        assert_eq!(PubendId::default(), PubendId(0));
        assert_eq!(SubscriberId::default(), SubscriberId(0));
    }
}
