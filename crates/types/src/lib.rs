//! Core vocabulary types for the Gryphon durable-subscription reproduction.
//!
//! This crate defines the identifiers, timestamps, event representation,
//! checkpoint tokens (vector clocks) and wire messages shared by every other
//! crate in the workspace. It corresponds to the *system model* of §2 of
//! "Scalably Supporting Durable Subscriptions in a Publish/Subscribe System"
//! (Bhola, Zhao, Auerbach — DSN 2003):
//!
//! * every persistent event is published to a **pubend** and assigned a
//!   monotone [`Timestamp`] on that pubend's stream;
//! * a durable subscriber holds a [`CheckpointToken`] — a vector clock of
//!   `(pubend, timestamp)` pairs — as its resumption point;
//! * subscribers receive [`DeliveryMsg`]s: **event**, **silence** or **gap**
//!   messages, each of which advances per-pubend knowledge monotonically.
//!
//! # Examples
//!
//! ```
//! use gryphon_types::{CheckpointToken, PubendId, Timestamp};
//!
//! let mut ct = CheckpointToken::new();
//! ct.advance(PubendId(0), Timestamp(100));
//! ct.advance(PubendId(0), Timestamp(90)); // ignored: not monotone
//! assert_eq!(ct.get(PubendId(0)), Timestamp(100));
//! ```

pub mod ct;
pub mod event;
pub mod ids;
pub mod lineage;
pub mod msg;
pub mod symbol;
pub mod tick;
pub mod time;

pub use ct::CheckpointToken;
pub use event::{AttrValue, Attributes, Event, EventRef};
pub use ids::{BrokerId, NodeId, PubendId, SubSlot, SubscriberId};
pub use lineage::LineageKey;
pub use msg::{
    ClientMsg, CuriosityMsg, DeliveryKind, DeliveryMsg, KnowledgeMsg, KnowledgePart, NetMsg,
    PublishMsg, ReleaseMsg, ServerMsg, SubInterestMsg, SubscriptionSpec,
};
pub use symbol::{AttrName, SymbolId};
pub use tick::TickKind;
pub use time::Timestamp;

/// Errors produced by the core protocol layers.
///
/// Storage-level errors live in `gryphon-storage`; this enum covers protocol
/// and model violations that public APIs can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GryphonError {
    /// A subscriber id was not known to the broker handling the request.
    UnknownSubscriber(SubscriberId),
    /// A pubend id was not known to the node handling the request.
    UnknownPubend(PubendId),
    /// A checkpoint token regressed (client presented a timestamp beyond
    /// what the system can still serve *forward* from).
    NonMonotoneCheckpoint {
        /// Pubend whose component regressed.
        pubend: PubendId,
        /// The offending timestamp.
        presented: Timestamp,
    },
    /// A subscription filter failed to parse or validate.
    InvalidSubscription(String),
    /// The broker is not configured for the requested role
    /// (e.g. publishing to a broker that hosts no pubends).
    RoleMismatch(String),
}

impl std::fmt::Display for GryphonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GryphonError::UnknownSubscriber(s) => write!(f, "unknown subscriber {s}"),
            GryphonError::UnknownPubend(p) => write!(f, "unknown pubend {p}"),
            GryphonError::NonMonotoneCheckpoint { pubend, presented } => {
                write!(f, "checkpoint token for {pubend} regressed to {presented}")
            }
            GryphonError::InvalidSubscription(msg) => {
                write!(f, "invalid subscription: {msg}")
            }
            GryphonError::RoleMismatch(msg) => write!(f, "role mismatch: {msg}"),
        }
    }
}

impl std::error::Error for GryphonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errs = [
            GryphonError::UnknownSubscriber(SubscriberId(3)),
            GryphonError::UnknownPubend(PubendId(1)),
            GryphonError::NonMonotoneCheckpoint {
                pubend: PubendId(0),
                presented: Timestamp(5),
            },
            GryphonError::InvalidSubscription("bad".into()),
            GryphonError::RoleMismatch("no pubends".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
            assert!(!format!("{e:?}").is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GryphonError>();
    }
}
