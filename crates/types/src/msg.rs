//! Wire messages: broker↔broker control traffic and client↔broker traffic.
//!
//! The overlay routes [`NetMsg`] values over FIFO links. Knowledge flows
//! *down* the per-pubend tree (from the pubend's hosting broker towards
//! subscriber hosting brokers); curiosity (nacks) and release aggregation
//! flow *up*. Clients speak [`ClientMsg`] / [`ServerMsg`] with the broker
//! they attach to.

use crate::{CheckpointToken, EventRef, PubendId, SubscriberId, Timestamp};

/// A subscription filter, carried on the wire as its source expression.
///
/// The expression grammar is defined by `gryphon-matching` (conjunctions of
/// attribute predicates, e.g. `class = 2 && price > 10.5`). Brokers parse
/// the expression on receipt; parse errors are reported back on connect.
///
/// # Examples
///
/// ```
/// use gryphon_types::SubscriptionSpec;
/// let spec = SubscriptionSpec::new("class = 2");
/// assert_eq!(spec.expr(), "class = 2");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SubscriptionSpec(String);

impl SubscriptionSpec {
    /// Wraps a filter expression.
    pub fn new(expr: impl Into<String>) -> Self {
        SubscriptionSpec(expr.into())
    }

    /// The filter expression text.
    pub fn expr(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for SubscriptionSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for SubscriptionSpec {
    fn from(s: &str) -> Self {
        SubscriptionSpec::new(s)
    }
}

/// A publish request from a publisher client to its hosting broker.
///
/// The pubend assigns the timestamp; the client supplies content only.
#[derive(Debug, Clone)]
pub struct PublishMsg {
    /// Target pubend.
    pub pubend: PubendId,
    /// Attributes for content-based matching.
    pub attrs: crate::Attributes,
    /// Opaque payload.
    pub payload: bytes::Bytes,
}

/// One element of a knowledge message: a span of tick knowledge.
///
/// `Q` is never transmitted — absence of knowledge is the default — so the
/// wire form only carries `S`, `D` and `L`.
#[derive(Debug, Clone, PartialEq)]
pub enum KnowledgePart {
    /// All ticks in `[from, to]` (inclusive) are silence.
    Silence {
        /// First silent tick.
        from: Timestamp,
        /// Last silent tick.
        to: Timestamp,
    },
    /// A data tick carrying an event (at `event.ts`).
    Data(EventRef),
    /// All ticks in `[from, to]` (inclusive) were discarded by early
    /// release.
    Lost {
        /// First lost tick.
        from: Timestamp,
        /// Last lost tick.
        to: Timestamp,
    },
}

impl KnowledgePart {
    /// The inclusive tick range this part covers.
    pub fn range(&self) -> (Timestamp, Timestamp) {
        match self {
            KnowledgePart::Silence { from, to } | KnowledgePart::Lost { from, to } => (*from, *to),
            KnowledgePart::Data(e) => (e.ts, e.ts),
        }
    }
}

/// Knowledge flowing down a pubend's tree (also the response to a nack).
#[derive(Debug, Clone)]
pub struct KnowledgeMsg {
    /// The pubend whose stream this describes.
    pub pubend: PubendId,
    /// Spans of new knowledge, in ascending tick order.
    pub parts: Vec<KnowledgePart>,
    /// `true` when this message answers a nack (recovery traffic). Brokers
    /// forward responses only to the downstreams that registered interest,
    /// while fresh knowledge flows to every child.
    pub nack_response: bool,
    /// The receiver's subscription-interest version this message was
    /// filtered under (see [`SubInterestMsg::version`]). A subscription
    /// added in interest version `v` may only be served ticks from
    /// messages stamped `≥ v` — earlier messages may have silently
    /// downgraded its events. `0` = no interest applied (unfiltered).
    pub interest_version: u64,
}

impl KnowledgeMsg {
    /// Approximate wire size (drives bandwidth-limited links).
    pub fn size_hint(&self) -> usize {
        16 + self
            .parts
            .iter()
            .map(|p| match p {
                KnowledgePart::Data(e) => e.encoded_len(),
                _ => 17,
            })
            .sum::<usize>()
    }
}

/// A nack: "send me knowledge for these tick ranges".
///
/// Ranges are inclusive; a `to` of [`Timestamp::MAX`] means "everything you
/// currently have from `from` onwards" (used by a recovering SHB whose
/// constream must catch up without knowing the pubend's current time).
#[derive(Debug, Clone)]
pub struct CuriosityMsg {
    /// The pubend whose stream is being nacked.
    pub pubend: PubendId,
    /// Inclusive tick ranges still unknown downstream.
    pub ranges: Vec<(Timestamp, Timestamp)>,
    /// `true` when only the pubend's authoritative knowledge may answer:
    /// interior caches may hold streams filtered without the requesting
    /// subscription (the reconnect-anywhere extension of paper §1).
    pub authoritative: bool,
}

/// Release-protocol aggregation flowing up the tree (paper §3).
///
/// Each node reports, for one pubend, the minimum over its subtree of the
/// released timestamp and of `latestDelivered`. The pubend (root) uses the
/// global minima `Tr(p)` and `Td(p)` to decide when ticks may turn `L`.
#[derive(Debug, Clone, Copy)]
pub struct ReleaseMsg {
    /// The pubend this report concerns.
    pub pubend: PubendId,
    /// Minimum released timestamp over the subtree.
    pub released: Timestamp,
    /// Minimum `latestDelivered` over the subtree.
    pub latest_delivered: Timestamp,
}

/// Aggregate subscription interest a child broker reports to its parent.
///
/// Parents filter knowledge per child: a data tick matching no subscription
/// in the child's subtree is forwarded as silence, preserving the paper's
/// "filtering at intermediate nodes improves network utilization" property.
/// The message carries the child's complete current set (replacement
/// semantics), which keeps the protocol trivially idempotent.
#[derive(Debug, Clone)]
pub struct SubInterestMsg {
    /// All durable subscriptions in the sender's subtree.
    pub subs: Vec<(SubscriberId, SubscriptionSpec)>,
    /// Monotone version of the sender's interest set. The parent echoes
    /// the version it filtered under on every [`KnowledgeMsg`], which is
    /// how a subscriber-hosting broker learns when a *new* subscription's
    /// filter is causally upstream (and thus where the subscription may
    /// safely start).
    pub version: u64,
}

/// Messages a client sends to the broker it attaches to.
#[derive(Debug, Clone)]
pub enum ClientMsg {
    /// Attach (or re-attach) a durable subscription.
    Connect {
        /// The durable subscription id.
        sub: SubscriberId,
        /// Resumption point; `None` on first-ever connect (the SHB then
        /// starts the subscription at `latestDelivered`, i.e. non-catchup)
        /// or when the broker manages the checkpoint (JMS mode).
        ct: Option<CheckpointToken>,
        /// Filter; required on first-ever connect, ignored afterwards.
        spec: Option<SubscriptionSpec>,
        /// JMS-style subscription: the SHB persists the checkpoint token
        /// in its metadata table on acknowledgment (paper §5.2).
        broker_ct: bool,
        /// JMS auto-acknowledge: the client acknowledges every message,
        /// and the SHB serializes delivery against commit completion —
        /// the paper's most severe mode.
        auto_ack: bool,
    },
    /// Periodic acknowledgment: everything ≤ `ct` is consumed.
    Ack {
        /// The acknowledging subscription.
        sub: SubscriberId,
        /// The consumed-prefix vector clock.
        ct: CheckpointToken,
    },
    /// Graceful detach (the subscription itself stays durable).
    Disconnect {
        /// The detaching subscription.
        sub: SubscriberId,
    },
    /// Destroy the durable subscription entirely (its acknowledgments no
    /// longer hold back release).
    Unsubscribe {
        /// The subscription to destroy.
        sub: SubscriberId,
    },
}

/// One message delivered to a durable subscriber for one pubend.
///
/// Let `t0` be the timestamp of the previous message this subscriber saw
/// from the same pubend (or its checkpoint component). The three kinds
/// guarantee (paper §2):
///
/// * **Event** at `m.t`: no matching events existed in `(t0, m.t)`;
/// * **Silence** with `m.t`: no matching events existed in `(t0, m.t]`;
/// * **Gap** with `m.t`: matching events *may* have existed in `(t0, m.t]`
///   but the information was discarded by early release.
#[derive(Debug, Clone)]
pub struct DeliveryMsg {
    /// The pubend this message advances.
    pub pubend: PubendId,
    /// Event, silence or gap.
    pub kind: DeliveryKind,
}

/// Payload of a [`DeliveryMsg`].
#[derive(Debug, Clone)]
pub enum DeliveryKind {
    /// An event matching the subscription.
    Event(EventRef),
    /// Silence up to (and including) the carried timestamp.
    Silence(Timestamp),
    /// Potential loss up to (and including) the carried timestamp.
    Gap(Timestamp),
}

impl DeliveryMsg {
    /// The timestamp `m.t` this message advances the subscriber to.
    pub fn ts(&self) -> Timestamp {
        match &self.kind {
            DeliveryKind::Event(e) => e.ts,
            DeliveryKind::Silence(t) | DeliveryKind::Gap(t) => *t,
        }
    }

    /// `true` when this message carries an application event.
    pub fn is_event(&self) -> bool {
        matches!(self.kind, DeliveryKind::Event(_))
    }

    /// `true` when this message is a gap notification.
    pub fn is_gap(&self) -> bool {
        matches!(self.kind, DeliveryKind::Gap(_))
    }
}

/// Messages a broker sends to an attached client.
#[derive(Debug, Clone)]
pub enum ServerMsg {
    /// Connection accepted; carries the starting checkpoint the SHB will
    /// deliver forward from (for a first connect this is `latestDelivered`).
    ConnectOk {
        /// The subscription this acknowledges.
        sub: SubscriberId,
        /// Effective resumption point.
        start: CheckpointToken,
    },
    /// Connection refused.
    ConnectErr {
        /// The subscription this refuses.
        sub: SubscriberId,
        /// Human-readable reason.
        reason: String,
    },
    /// An in-order delivery for one pubend.
    Deliver {
        /// Destination subscription.
        sub: SubscriberId,
        /// The message.
        msg: DeliveryMsg,
    },
}

/// Every message routed by the overlay runtime.
#[derive(Debug, Clone)]
pub enum NetMsg {
    /// Publisher client → hosting broker.
    Publish(PublishMsg),
    /// Parent broker → child broker (stream knowledge).
    Knowledge(KnowledgeMsg),
    /// Child broker → parent broker (nack).
    Curiosity(CuriosityMsg),
    /// Child broker → parent broker (release aggregation).
    Release(ReleaseMsg),
    /// Child broker → parent broker (subscription interest).
    SubInterest(SubInterestMsg),
    /// Client → broker.
    Client(ClientMsg),
    /// Broker → client.
    Server(ServerMsg),
}

impl NetMsg {
    /// Approximate wire size in bytes, used by bandwidth-limited links.
    ///
    /// Events dominate (the paper's 418-byte events); control messages are
    /// charged small fixed sizes.
    pub fn size_hint(&self) -> usize {
        match self {
            NetMsg::Publish(p) => {
                64 + p.payload.len() + p.attrs.keys().map(|k| k.as_str().len() + 10).sum::<usize>()
            }
            NetMsg::Knowledge(k) => k.size_hint(),
            NetMsg::Curiosity(c) => 16 + 16 * c.ranges.len(),
            NetMsg::Release(_) => 24,
            NetMsg::SubInterest(s) => {
                16 + s
                    .subs
                    .iter()
                    .map(|(_, spec)| 12 + spec.expr().len())
                    .sum::<usize>()
            }
            NetMsg::Client(_) => 64,
            NetMsg::Server(ServerMsg::Deliver { msg, .. }) => match &msg.kind {
                DeliveryKind::Event(e) => 32 + e.encoded_len(),
                _ => 32,
            },
            NetMsg::Server(_) => 64,
        }
    }

    /// The pubend this message is about, when it has exactly one — the
    /// routing key a sharded runtime uses to keep same-pubend messages
    /// ordered on one worker while spreading pubends across workers.
    ///
    /// `None` means the message is not pubend-scoped (subscription
    /// interest, client control traffic, connection-level server
    /// replies) and must be handled by a runtime-chosen policy instead
    /// (broadcast or a designated worker).
    pub fn pubend_key(&self) -> Option<PubendId> {
        match self {
            NetMsg::Publish(p) => Some(p.pubend),
            NetMsg::Knowledge(k) => Some(k.pubend),
            NetMsg::Curiosity(c) => Some(c.pubend),
            NetMsg::Release(r) => Some(r.pubend),
            NetMsg::Server(ServerMsg::Deliver { msg, .. }) => Some(msg.pubend),
            NetMsg::SubInterest(_) | NetMsg::Client(_) | NetMsg::Server(_) => None,
        }
    }

    /// Short tag for logging/metrics.
    pub fn tag(&self) -> &'static str {
        match self {
            NetMsg::Publish(_) => "publish",
            NetMsg::Knowledge(_) => "knowledge",
            NetMsg::Curiosity(_) => "curiosity",
            NetMsg::Release(_) => "release",
            NetMsg::SubInterest(_) => "sub_interest",
            NetMsg::Client(_) => "client",
            NetMsg::Server(_) => "server",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    #[test]
    fn delivery_ts_covers_all_kinds() {
        let e = Event::builder(PubendId(0)).build_ref(Timestamp(7));
        let event = DeliveryMsg {
            pubend: PubendId(0),
            kind: DeliveryKind::Event(e),
        };
        let silence = DeliveryMsg {
            pubend: PubendId(0),
            kind: DeliveryKind::Silence(Timestamp(9)),
        };
        let gap = DeliveryMsg {
            pubend: PubendId(0),
            kind: DeliveryKind::Gap(Timestamp(11)),
        };
        assert_eq!(event.ts(), Timestamp(7));
        assert!(event.is_event() && !event.is_gap());
        assert_eq!(silence.ts(), Timestamp(9));
        assert_eq!(gap.ts(), Timestamp(11));
        assert!(gap.is_gap());
    }

    #[test]
    fn knowledge_part_range() {
        let e = Event::builder(PubendId(0)).build_ref(Timestamp(4));
        assert_eq!(KnowledgePart::Data(e).range(), (Timestamp(4), Timestamp(4)));
        assert_eq!(
            KnowledgePart::Silence {
                from: Timestamp(1),
                to: Timestamp(3)
            }
            .range(),
            (Timestamp(1), Timestamp(3))
        );
    }

    #[test]
    fn netmsg_tags_are_distinct() {
        use std::collections::HashSet;
        let msgs: Vec<NetMsg> = vec![
            NetMsg::Publish(PublishMsg {
                pubend: PubendId(0),
                attrs: Default::default(),
                payload: bytes::Bytes::new(),
            }),
            NetMsg::Knowledge(KnowledgeMsg {
                pubend: PubendId(0),
                parts: vec![],
                nack_response: false,
                interest_version: 0,
            }),
            NetMsg::Curiosity(CuriosityMsg {
                pubend: PubendId(0),
                ranges: vec![],
                authoritative: false,
            }),
            NetMsg::Release(ReleaseMsg {
                pubend: PubendId(0),
                released: Timestamp(0),
                latest_delivered: Timestamp(0),
            }),
            NetMsg::SubInterest(SubInterestMsg {
                subs: vec![],
                version: 0,
            }),
            NetMsg::Client(ClientMsg::Disconnect {
                sub: SubscriberId(0),
            }),
            NetMsg::Server(ServerMsg::ConnectErr {
                sub: SubscriberId(0),
                reason: "x".into(),
            }),
        ];
        let tags: HashSet<_> = msgs.iter().map(|m| m.tag()).collect();
        assert_eq!(tags.len(), msgs.len());
    }

    #[test]
    fn pubend_key_covers_scoped_and_unscoped_msgs() {
        let p = PubendId(9);
        let scoped: Vec<NetMsg> = vec![
            NetMsg::Publish(PublishMsg {
                pubend: p,
                attrs: Default::default(),
                payload: bytes::Bytes::new(),
            }),
            NetMsg::Knowledge(KnowledgeMsg {
                pubend: p,
                parts: vec![],
                nack_response: false,
                interest_version: 0,
            }),
            NetMsg::Curiosity(CuriosityMsg {
                pubend: p,
                ranges: vec![],
                authoritative: false,
            }),
            NetMsg::Release(ReleaseMsg {
                pubend: p,
                released: Timestamp(0),
                latest_delivered: Timestamp(0),
            }),
            NetMsg::Server(ServerMsg::Deliver {
                sub: SubscriberId(0),
                msg: DeliveryMsg {
                    pubend: p,
                    kind: DeliveryKind::Silence(Timestamp(1)),
                },
            }),
        ];
        for m in &scoped {
            assert_eq!(
                m.pubend_key(),
                Some(p),
                "{} should be pubend-scoped",
                m.tag()
            );
        }
        let unscoped: Vec<NetMsg> = vec![
            NetMsg::SubInterest(SubInterestMsg {
                subs: vec![],
                version: 0,
            }),
            NetMsg::Client(ClientMsg::Disconnect {
                sub: SubscriberId(0),
            }),
            NetMsg::Server(ServerMsg::ConnectErr {
                sub: SubscriberId(0),
                reason: "x".into(),
            }),
        ];
        for m in &unscoped {
            assert_eq!(m.pubend_key(), None, "{} should be unscoped", m.tag());
        }
    }

    #[test]
    fn subscription_spec_roundtrip() {
        let s: SubscriptionSpec = "a = 1".into();
        assert_eq!(s.expr(), "a = 1");
        assert_eq!(s.to_string(), "a = 1");
    }
}
