//! Events: typed attributes for content-based matching plus an opaque
//! payload.
//!
//! Published events carry a small set of typed attributes (the content the
//! matching engine filters on) and an application payload. In the paper's
//! experiments events are 418 bytes: ~250 bytes of payload plus headers.

use crate::{AttrName, PubendId, Timestamp};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A typed attribute value.
///
/// Values of different types never compare equal and have no relative order
/// (mirroring content-based pub/sub semantics where a predicate on a string
/// attribute simply fails to match an integer-valued event).
///
/// # Examples
///
/// ```
/// use gryphon_types::AttrValue;
/// assert_eq!(AttrValue::from("IBM"), AttrValue::Str("IBM".into()));
/// assert!(AttrValue::Int(3).partial_cmp(&AttrValue::Str("x".into())).is_none());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AttrValue {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. `NaN` never matches any predicate.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl PartialEq for AttrValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (AttrValue::Int(a), AttrValue::Int(b)) => a == b,
            (AttrValue::Float(a), AttrValue::Float(b)) => a == b,
            (AttrValue::Str(a), AttrValue::Str(b)) => a == b,
            (AttrValue::Bool(a), AttrValue::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl PartialOrd for AttrValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (AttrValue::Int(a), AttrValue::Int(b)) => a.partial_cmp(b),
            (AttrValue::Float(a), AttrValue::Float(b)) => a.partial_cmp(b),
            (AttrValue::Str(a), AttrValue::Str(b)) => a.partial_cmp(b),
            (AttrValue::Bool(a), AttrValue::Bool(b)) => a.partial_cmp(b),
            _ => None,
        }
    }
}

impl std::hash::Hash for AttrValue {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            AttrValue::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            AttrValue::Float(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            AttrValue::Str(v) => {
                2u8.hash(state);
                v.hash(state);
            }
            AttrValue::Bool(v) => {
                3u8.hash(state);
                v.hash(state);
            }
        }
    }
}

// Hash/Eq consistency: `eq` only holds within one variant and delegates to
// the inner value; Float uses bit-equality for hashing, and f64::eq on
// distinct bit patterns that compare equal (0.0 vs -0.0) is accepted as a
// benign collision-miss (equality-indexed predicates on floats are rare; the
// range path handles them).
impl Eq for AttrValue {}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "'{v}'"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// An event's attribute map: interned name → typed value.
///
/// Keys are interned [`AttrName`]s so the matching hot path works on dense
/// symbol ids instead of hashing strings per event. A `BTreeMap` keeps
/// attribute order deterministic — and because [`AttrName`] orders by its
/// *string* (not its interning-order id), iteration order is identical
/// across processes and shard counts, which matters for reproducible
/// simulation runs and golden tests.
pub type Attributes = BTreeMap<AttrName, AttrValue>;

/// A published event.
///
/// Events are immutable once assigned a timestamp by their pubend; brokers
/// share them via [`EventRef`] (an `Arc`), so fan-out to thousands of
/// subscribers never copies the payload.
///
/// # Examples
///
/// ```
/// use gryphon_types::{Event, PubendId, Timestamp};
///
/// let e = Event::builder(PubendId(0))
///     .attr("symbol", "IBM")
///     .attr("price", 85.5)
///     .payload(vec![0u8; 250])
///     .build(Timestamp(17));
/// assert_eq!(e.ts, Timestamp(17));
/// assert_eq!(e.attr("symbol"), Some(&"IBM".into()));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Pubend this event was published to.
    pub pubend: PubendId,
    /// Tick assigned by the pubend; unique per pubend.
    pub ts: Timestamp,
    /// Typed attributes used for content-based matching.
    pub attrs: Attributes,
    /// Opaque application payload.
    pub payload: Bytes,
}

/// Shared reference to an immutable event.
pub type EventRef = Arc<Event>;

impl Event {
    /// Starts building an event destined for `pubend`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_types::{Event, PubendId, Timestamp};
    /// let e = Event::builder(PubendId(1)).attr("k", 1i64).build(Timestamp(1));
    /// assert_eq!(e.pubend, PubendId(1));
    /// ```
    pub fn builder(pubend: PubendId) -> EventBuilder {
        EventBuilder {
            pubend,
            attrs: BTreeMap::new(),
            payload: Bytes::new(),
        }
    }

    /// Approximate on-the-wire size in bytes (headers + attributes +
    /// payload), used by storage-volume accounting.
    ///
    /// The constant header charge (24 bytes: pubend + timestamp + framing)
    /// plus per-attribute costs approximates the paper's 418-byte events
    /// (250-byte payload).
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_types::{Event, PubendId, Timestamp};
    /// let e = Event::builder(PubendId(0)).payload(vec![0; 250]).build(Timestamp(1));
    /// assert!(e.encoded_len() >= 274);
    /// ```
    pub fn encoded_len(&self) -> usize {
        let attr_len: usize = self
            .attrs
            .iter()
            .map(|(k, v)| {
                k.as_str().len()
                    + 2
                    + match v {
                        AttrValue::Int(_) | AttrValue::Float(_) => 8,
                        AttrValue::Str(s) => s.len() + 2,
                        AttrValue::Bool(_) => 1,
                    }
            })
            .sum();
        24 + attr_len + self.payload.len()
    }

    /// Returns the attribute `name`, if present.
    ///
    /// Looks the name up in the symbol table without interning it, so
    /// probing with arbitrary strings never grows the table.
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_types::{Event, PubendId, Timestamp, AttrValue};
    /// let e = Event::builder(PubendId(0)).attr("x", 3i64).build(Timestamp(1));
    /// assert_eq!(e.attr("x"), Some(&AttrValue::Int(3)));
    /// assert_eq!(e.attr("y"), None);
    /// ```
    pub fn attr(&self, name: &str) -> Option<&AttrValue> {
        self.attrs.get(&AttrName::lookup(name)?)
    }
}

/// Builder for [`Event`]; see [`Event::builder`].
#[derive(Debug, Clone)]
pub struct EventBuilder {
    pubend: PubendId,
    attrs: Attributes,
    payload: Bytes,
}

impl EventBuilder {
    /// Adds (or replaces) an attribute. The name is interned.
    pub fn attr(mut self, name: impl Into<AttrName>, value: impl Into<AttrValue>) -> Self {
        self.attrs.insert(name.into(), value.into());
        self
    }

    /// Sets the application payload.
    pub fn payload(mut self, payload: impl Into<Bytes>) -> Self {
        self.payload = payload.into();
        self
    }

    /// Finishes the event with the timestamp its pubend assigned.
    pub fn build(self, ts: Timestamp) -> Event {
        Event {
            pubend: self.pubend,
            ts,
            attrs: self.attrs,
            payload: self.payload,
        }
    }

    /// Finishes the event wrapped in an [`EventRef`].
    pub fn build_ref(self, ts: Timestamp) -> EventRef {
        Arc::new(self.build(ts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_value_cross_type_neither_eq_nor_ordered() {
        assert_ne!(AttrValue::Int(1), AttrValue::Float(1.0));
        assert!(AttrValue::Int(1)
            .partial_cmp(&AttrValue::Bool(true))
            .is_none());
    }

    #[test]
    fn attr_value_same_type_ordering() {
        assert!(AttrValue::Int(1) < AttrValue::Int(2));
        assert!(AttrValue::Str("a".into()) < AttrValue::Str("b".into()));
        assert!(AttrValue::Float(1.5) < AttrValue::Float(2.0));
    }

    #[test]
    fn nan_compares_with_nothing() {
        let nan = AttrValue::Float(f64::NAN);
        assert!(nan.partial_cmp(&AttrValue::Float(0.0)).is_none());
        assert_ne!(nan, AttrValue::Float(f64::NAN));
    }

    #[test]
    fn builder_produces_expected_event() {
        let e = Event::builder(PubendId(2))
            .attr("class", 3i64)
            .attr("symbol", "IBM")
            .payload(vec![1, 2, 3])
            .build(Timestamp(9));
        assert_eq!(e.pubend, PubendId(2));
        assert_eq!(e.ts, Timestamp(9));
        assert_eq!(e.attr("class"), Some(&AttrValue::Int(3)));
        assert_eq!(e.payload.as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn encoded_len_tracks_payload() {
        let small = Event::builder(PubendId(0)).build(Timestamp(1));
        let big = Event::builder(PubendId(0))
            .payload(vec![0u8; 250])
            .build(Timestamp(1));
        assert_eq!(big.encoded_len() - small.encoded_len(), 250);
    }

    #[test]
    fn hash_distinguishes_variants() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(AttrValue::Int(1));
        set.insert(AttrValue::Bool(true));
        set.insert(AttrValue::Str("1".into()));
        assert_eq!(set.len(), 3);
    }
}
