//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` returns the guard directly instead of a `Result`. A poisoned
//! std lock (a panic while held) propagates the inner data anyway — the
//! same "ignore poisoning" stance `parking_lot` takes by construction.

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never returns an
    /// error: poisoning is ignored, as in the real `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves no
    /// contention).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
