//! Silence/lost-run coalescing for batched knowledge fan-out (paper §3.2).
//!
//! When an intermediate broker downgrades non-matching data ticks to
//! silence and accumulates knowledge for a child across several incoming
//! messages, adjacent silence spans pile up: `S[1,3] S[4,4] S[5,9]` says
//! nothing more than `S[1,9]`. [`push_coalesced`] is the single append
//! point every batching path goes through — it merges a new part into the
//! tail run when the two are the same kind and adjacent or overlapping, so
//! a batch's part list stays in the canonical minimal form the paper calls
//! *silence consolidation*.
//!
//! Coalescing is semantically free: applying the coalesced list to a
//! [`KnowledgeStream`](crate::KnowledgeStream) yields exactly the same
//! stream state as applying the originals (property-tested in this
//! module), because silence and lost knowledge are span-algebraic — only
//! the covered set matters, not its partition into parts.

use gryphon_types::msg::KnowledgePart;

/// Appends `part` to `parts`, merging it into the final part when both
/// are [`KnowledgePart::Silence`] (or both [`KnowledgePart::Lost`]) and
/// their ranges overlap or are adjacent.
///
/// Parts must be appended in ascending tick order (the order knowledge
/// messages carry them); the merged run covers the union of both spans.
/// Data parts are never merged.
///
/// # Examples
///
/// ```
/// use gryphon_streams::push_coalesced;
/// use gryphon_types::msg::KnowledgePart;
/// use gryphon_types::Timestamp;
///
/// let mut parts = Vec::new();
/// push_coalesced(&mut parts, KnowledgePart::Silence { from: Timestamp(1), to: Timestamp(3) });
/// push_coalesced(&mut parts, KnowledgePart::Silence { from: Timestamp(4), to: Timestamp(9) });
/// assert_eq!(parts.len(), 1);
/// assert_eq!(parts[0].range(), (Timestamp(1), Timestamp(9)));
/// ```
pub fn push_coalesced(parts: &mut Vec<KnowledgePart>, part: KnowledgePart) {
    if let Some(last) = parts.last_mut() {
        match (last, &part) {
            (
                KnowledgePart::Silence { from, to },
                KnowledgePart::Silence {
                    from: nfrom,
                    to: nto,
                },
            )
            | (
                KnowledgePart::Lost { from, to },
                KnowledgePart::Lost {
                    from: nfrom,
                    to: nto,
                },
                // Fuse only when the union is one contiguous span: the
                // symmetric adjacency test guards against out-of-order
                // appends fabricating knowledge for the gap in between
                // (e.g. S[5,9] then S[1,3] must NOT become S[1,9]).
            ) if nfrom.0 <= to.0.saturating_add(1) && from.0 <= nto.0.saturating_add(1) => {
                *from = (*from).min(*nfrom);
                *to = (*to).max(*nto);
                return;
            }
            _ => {}
        }
    }
    parts.push(part);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KnowledgeStream;
    use gryphon_types::{Event, PubendId, Timestamp};

    fn sil(from: u64, to: u64) -> KnowledgePart {
        KnowledgePart::Silence {
            from: Timestamp(from),
            to: Timestamp(to),
        }
    }

    fn lost(from: u64, to: u64) -> KnowledgePart {
        KnowledgePart::Lost {
            from: Timestamp(from),
            to: Timestamp(to),
        }
    }

    fn data(ts: u64) -> KnowledgePart {
        KnowledgePart::Data(Event::builder(PubendId(0)).build_ref(Timestamp(ts)))
    }

    #[test]
    fn adjacent_silence_fuses() {
        let mut parts = Vec::new();
        push_coalesced(&mut parts, sil(1, 3));
        push_coalesced(&mut parts, sil(4, 4));
        push_coalesced(&mut parts, sil(5, 9));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].range(), (Timestamp(1), Timestamp(9)));
    }

    #[test]
    fn overlapping_silence_fuses() {
        let mut parts = Vec::new();
        push_coalesced(&mut parts, sil(1, 5));
        push_coalesced(&mut parts, sil(3, 8));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].range(), (Timestamp(1), Timestamp(8)));
    }

    #[test]
    fn gap_keeps_runs_apart() {
        let mut parts = Vec::new();
        push_coalesced(&mut parts, sil(1, 3));
        push_coalesced(&mut parts, sil(5, 7));
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn data_breaks_a_run() {
        let mut parts = Vec::new();
        push_coalesced(&mut parts, sil(1, 3));
        push_coalesced(&mut parts, data(4));
        push_coalesced(&mut parts, sil(5, 6));
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn lost_and_silence_never_mix() {
        let mut parts = Vec::new();
        push_coalesced(&mut parts, lost(1, 3));
        push_coalesced(&mut parts, sil(4, 6));
        assert_eq!(parts.len(), 2);
        push_coalesced(&mut parts, sil(7, 9));
        assert_eq!(parts.len(), 2, "silence after silence still fuses");
    }

    #[test]
    fn out_of_order_with_gap_does_not_fuse() {
        // Union of [5,9] and [1,3] is not contiguous (4 is missing):
        // fusing would fabricate silence knowledge for tick 4.
        let mut parts = Vec::new();
        push_coalesced(&mut parts, sil(5, 9));
        push_coalesced(&mut parts, sil(1, 3));
        assert_eq!(parts.len(), 2);
        // But an out-of-order append whose union IS contiguous still fuses.
        let mut parts = Vec::new();
        push_coalesced(&mut parts, sil(5, 9));
        push_coalesced(&mut parts, sil(1, 4));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].range(), (Timestamp(1), Timestamp(9)));
    }

    #[test]
    fn coalesced_application_equals_original() {
        // Deterministic spot-check of the property the prop test sweeps.
        let original = vec![sil(1, 2), sil(3, 3), data(4), sil(5, 6), sil(7, 9)];
        let mut coalesced = Vec::new();
        for p in &original {
            push_coalesced(&mut coalesced, p.clone());
        }
        assert_eq!(coalesced.len(), 3);
        let mut a = KnowledgeStream::new();
        let mut b = KnowledgeStream::new();
        for p in &original {
            a.apply(p);
        }
        for p in &coalesced {
            b.apply(p);
        }
        assert_eq!(
            a.export_range(Timestamp(1), Timestamp(12)),
            b.export_range(Timestamp(1), Timestamp(12))
        );
    }
}
