//! The knowledge stream: an interval map over tick states.

use gryphon_types::{EventRef, KnowledgePart, TickKind, Timestamp};
use std::collections::BTreeMap;

/// A per-pubend knowledge stream.
///
/// Representation invariants:
///
/// * `L` ticks form a prefix `[1, lost_to]` (the release protocol only
///   ever converts an increasing prefix to `L`);
/// * `S` spans (`silence`: start → inclusive end) are disjoint, coalesced,
///   and entirely above both `lost_to` and `base`;
/// * `D` ticks (`data`) never coincide with an `S` span;
/// * everything `≤ base` has been consumed/discarded by the owner and is
///   reported as its historical kind only coarsely (see
///   [`KnowledgeStream::kind_at`]).
///
/// `Q` is implicit: any tick above `base`/`lost_to` covered by neither map.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeStream {
    /// Ticks `[1, lost_to]` are lost (0 = nothing lost).
    lost_to: u64,
    /// Consumed prefix: the owner no longer cares about ticks `≤ base`.
    base: u64,
    /// Silence spans: start → inclusive end.
    silence: BTreeMap<u64, u64>,
    /// Data ticks.
    data: BTreeMap<u64, EventRef>,
}

impl KnowledgeStream {
    /// An empty stream: every tick is `Q`.
    pub fn new() -> Self {
        Self::default()
    }

    /// A stream whose consumed prefix starts at `base`: ticks `≤ base`
    /// are treated as already-known/irrelevant (used to seed a catchup
    /// stream at the subscriber's checkpoint, or the constream at
    /// `latestDelivered`).
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_streams::KnowledgeStream;
    /// # use gryphon_types::Timestamp;
    /// let ks = KnowledgeStream::with_base(Timestamp(100));
    /// assert_eq!(ks.doubt_horizon(Timestamp(100)), Timestamp(100));
    /// assert_eq!(ks.base(), Timestamp(100));
    /// ```
    pub fn with_base(base: Timestamp) -> Self {
        KnowledgeStream {
            base: base.0,
            ..Self::default()
        }
    }

    /// The consumed prefix.
    pub fn base(&self) -> Timestamp {
        Timestamp(self.base)
    }

    /// End of the lost prefix ([`Timestamp::ZERO`] when nothing is lost).
    pub fn lost_to(&self) -> Timestamp {
        Timestamp(self.lost_to)
    }

    /// The tick state at `ts`.
    ///
    /// Ticks inside the consumed prefix report `S` unless they fall in the
    /// lost prefix (historical precision below `base` is not retained).
    pub fn kind_at(&self, ts: Timestamp) -> TickKind {
        let t = ts.0;
        if t <= self.lost_to {
            return TickKind::L;
        }
        if self.data.contains_key(&t) {
            return TickKind::D;
        }
        if let Some((_, &end)) = self.silence.range(..=t).next_back() {
            if end >= t {
                return TickKind::S;
            }
        }
        if t <= self.base {
            return TickKind::S;
        }
        TickKind::Q
    }

    /// Records a data tick. Returns `true` if the tick was previously
    /// unknown (an `S` there is *not* overwritten: silence recorded for a
    /// subtree means the event is irrelevant downstream).
    pub fn set_data(&mut self, event: EventRef) -> bool {
        let t = event.ts.0;
        if t <= self.lost_to || t <= self.base {
            return false;
        }
        if self.kind_at(event.ts) != TickKind::Q {
            return false;
        }
        self.data.insert(t, event);
        true
    }

    /// Records silence over the inclusive range `[from, to]`. Data ticks
    /// inside the range are preserved (data beats silence); unknown ticks
    /// become `S`.
    pub fn set_silence(&mut self, from: Timestamp, to: Timestamp) {
        let lo = from.0.max(self.lost_to + 1).max(self.base + 1).max(1);
        let hi = to.0;
        if lo > hi {
            return;
        }
        // Merge with overlapping/adjacent spans.
        let mut new_lo = lo;
        let mut new_hi = hi;
        // Predecessor span that might touch [lo, hi].
        if let Some((&s, &e)) = self.silence.range(..lo).next_back() {
            if e + 1 >= lo {
                new_lo = s;
                new_hi = new_hi.max(e);
                self.silence.remove(&s);
            }
        }
        // Spans starting within [lo, hi+1].
        let overlapping: Vec<u64> = self
            .silence
            .range(new_lo..=new_hi.saturating_add(1))
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let e = self.silence.remove(&s).expect("key from range");
            new_hi = new_hi.max(e);
        }
        // Split around data ticks so S spans and D ticks never overlap
        // (data beats silence); this keeps export/apply round-trippable.
        let mut start = new_lo;
        let holes: Vec<u64> = self.data.range(new_lo..=new_hi).map(|(&d, _)| d).collect();
        for d in holes {
            if d > start {
                self.silence.insert(start, d - 1);
            }
            start = d + 1;
        }
        if start <= new_hi {
            self.silence.insert(start, new_hi);
        }
    }

    /// Extends the lost prefix to `to` (monotone; regressions ignored).
    /// Drops silence/data information the prefix swallows.
    pub fn set_lost_prefix(&mut self, to: Timestamp) {
        if to.0 <= self.lost_to {
            return;
        }
        self.lost_to = to.0;
        self.drop_prefix(to.0);
    }

    /// Advances the consumed prefix (after delivery): information `≤ ts`
    /// is discarded to bound memory.
    pub fn advance_base(&mut self, ts: Timestamp) {
        if ts.0 <= self.base {
            return;
        }
        self.base = ts.0;
        self.drop_prefix(ts.0);
    }

    fn drop_prefix(&mut self, upto: u64) {
        let dead: Vec<u64> = self.data.range(..=upto).map(|(&t, _)| t).collect();
        for t in dead {
            self.data.remove(&t);
        }
        let spans: Vec<(u64, u64)> = self.silence.range(..=upto).map(|(&s, &e)| (s, e)).collect();
        for (s, e) in spans {
            self.silence.remove(&s);
            if e > upto {
                self.silence.insert(upto + 1, e);
            }
        }
    }

    /// Applies one wire knowledge part.
    pub fn apply(&mut self, part: &KnowledgePart) {
        match part {
            KnowledgePart::Silence { from, to } => self.set_silence(*from, *to),
            KnowledgePart::Data(e) => {
                self.set_data(e.clone());
            }
            KnowledgePart::Lost { from: _, to } => self.set_lost_prefix(*to),
        }
    }

    /// The **doubt horizon** from `from`: the largest `t ≥ from` such that
    /// every tick in `(from, t]` is known (non-`Q`). `L` counts as known —
    /// the caller decides whether known-lost becomes a gap message.
    ///
    /// # Panics
    ///
    /// Debug-asserts `from ≥ base` (querying inside the consumed prefix is
    /// a logic error in the owner).
    pub fn doubt_horizon(&self, from: Timestamp) -> Timestamp {
        debug_assert!(from.0 >= self.base, "doubt_horizon below base");
        let mut t = from.0;
        loop {
            let next = t + 1;
            if next <= self.lost_to {
                t = self.lost_to;
                continue;
            }
            if self.data.contains_key(&next) {
                t = next;
                continue;
            }
            if let Some((_, &end)) = self.silence.range(..=next).next_back() {
                if end >= next {
                    t = end;
                    continue;
                }
            }
            break;
        }
        Timestamp(t)
    }

    /// Unknown (`Q`) ranges intersected with the inclusive range
    /// `[from, to]` — the holes a curiosity stream should nack.
    pub fn q_ranges(&self, from: Timestamp, to: Timestamp) -> Vec<(Timestamp, Timestamp)> {
        let mut out = Vec::new();
        let mut t = from.0.max(self.lost_to + 1).max(self.base + 1).max(1);
        let hi = to.0;
        while t <= hi {
            match self.kind_at(Timestamp(t)) {
                TickKind::Q => {
                    // Find the end of this Q run: next known thing.
                    let next_data = self.data.range(t..).next().map(|(&d, _)| d);
                    let next_sil = self.silence.range(t..).next().map(|(&s, _)| s);
                    let run_end = [next_data, next_sil]
                        .into_iter()
                        .flatten()
                        .min()
                        .map(|n| n - 1)
                        .unwrap_or(u64::MAX)
                        .min(hi);
                    out.push((Timestamp(t), Timestamp(run_end)));
                    t = run_end.saturating_add(1);
                    if run_end == u64::MAX {
                        break;
                    }
                }
                TickKind::D => t += 1,
                TickKind::S => {
                    // Skip to the end of the covering span (or single tick
                    // below base).
                    let end = self
                        .silence
                        .range(..=t)
                        .next_back()
                        .filter(|&(_, &e)| e >= t)
                        .map(|(_, &e)| e)
                        .unwrap_or(t);
                    t = end + 1;
                }
                TickKind::L => t = self.lost_to + 1,
            }
        }
        out
    }

    /// Data ticks with `from < ts ≤ to`, ascending (delivery order).
    pub fn events_in(
        &self,
        from: Timestamp,
        to: Timestamp,
    ) -> impl Iterator<Item = &EventRef> + '_ {
        self.data.range(from.0 + 1..=to.0).map(|(_, e)| e)
    }

    /// Number of data ticks currently held.
    pub fn data_len(&self) -> usize {
        self.data.len()
    }

    /// Number of silence spans currently held (memory accounting).
    pub fn silence_spans(&self) -> usize {
        self.silence.len()
    }

    /// Exports the knowledge covering `[from, to]` as wire parts in
    /// ascending order (`Q` ranges are simply absent). Used by caches and
    /// pubends answering nacks.
    pub fn export_range(&self, from: Timestamp, to: Timestamp) -> Vec<KnowledgePart> {
        let mut parts = Vec::new();
        let lo = from.0.max(1);
        let hi = to.0;
        if lo > hi {
            return parts;
        }
        if self.lost_to >= lo {
            parts.push(KnowledgePart::Lost {
                from: Timestamp(lo),
                to: Timestamp(self.lost_to.min(hi)),
            });
        }
        // Silence spans intersecting [lo, hi]: include the predecessor.
        let mut sil: Vec<(u64, u64)> = Vec::new();
        if let Some((_, &e)) = self.silence.range(..lo).next_back() {
            if e >= lo {
                sil.push((lo, e.min(hi)));
            }
        }
        for (&s, &e) in self.silence.range(lo..=hi) {
            sil.push((s.max(lo), e.min(hi)));
        }
        let mut events: Vec<&EventRef> = self.data.range(lo..=hi).map(|(_, e)| e).collect();
        // Merge-sort silence spans and events by position.
        let mut si = 0;
        events.reverse(); // pop from the back = ascending
        while si < sil.len() || !events.is_empty() {
            let next_sil = sil.get(si).map(|&(s, _)| s);
            let next_ev = events.last().map(|e| e.ts.0);
            match (next_sil, next_ev) {
                (Some(s), Some(d)) if s < d => {
                    let (from, to) = sil[si];
                    parts.push(KnowledgePart::Silence {
                        from: Timestamp(from),
                        to: Timestamp(to),
                    });
                    si += 1;
                }
                (_, Some(_)) => {
                    let e = events.pop().expect("nonempty");
                    parts.push(KnowledgePart::Data(e.clone()));
                }
                (Some(_), None) => {
                    let (from, to) = sil[si];
                    parts.push(KnowledgePart::Silence {
                        from: Timestamp(from),
                        to: Timestamp(to),
                    });
                    si += 1;
                }
                (None, None) => break,
            }
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gryphon_types::{Event, PubendId};

    fn ev(ts: u64) -> EventRef {
        Event::builder(PubendId(0)).build_ref(Timestamp(ts))
    }

    #[test]
    fn empty_stream_is_all_q() {
        let ks = KnowledgeStream::new();
        assert_eq!(ks.kind_at(Timestamp(1)), TickKind::Q);
        assert_eq!(ks.doubt_horizon(Timestamp::ZERO), Timestamp::ZERO);
        assert_eq!(
            ks.q_ranges(Timestamp(1), Timestamp(5)),
            vec![(Timestamp(1), Timestamp(5))]
        );
    }

    #[test]
    fn silence_and_data_advance_doubt_horizon() {
        let mut ks = KnowledgeStream::new();
        ks.set_silence(Timestamp(1), Timestamp(3));
        assert_eq!(ks.doubt_horizon(Timestamp::ZERO), Timestamp(3));
        assert!(ks.set_data(ev(4)));
        assert_eq!(ks.doubt_horizon(Timestamp::ZERO), Timestamp(4));
        // Hole at 5; knowledge at 6 does not extend the horizon.
        assert!(ks.set_data(ev(6)));
        assert_eq!(ks.doubt_horizon(Timestamp::ZERO), Timestamp(4));
        ks.set_silence(Timestamp(5), Timestamp(5));
        assert_eq!(ks.doubt_horizon(Timestamp::ZERO), Timestamp(6));
    }

    #[test]
    fn silence_spans_coalesce() {
        let mut ks = KnowledgeStream::new();
        ks.set_silence(Timestamp(1), Timestamp(3));
        ks.set_silence(Timestamp(7), Timestamp(9));
        ks.set_silence(Timestamp(4), Timestamp(6)); // bridges the two
        assert_eq!(ks.silence_spans(), 1);
        assert_eq!(ks.doubt_horizon(Timestamp::ZERO), Timestamp(9));
        // Overlapping re-assertion is idempotent.
        ks.set_silence(Timestamp(2), Timestamp(8));
        assert_eq!(ks.silence_spans(), 1);
    }

    #[test]
    fn data_beats_silence_and_vice_versa_is_ignored() {
        let mut ks = KnowledgeStream::new();
        assert!(ks.set_data(ev(5)));
        ks.set_silence(Timestamp(3), Timestamp(7));
        assert_eq!(ks.kind_at(Timestamp(5)), TickKind::D);
        // And a data tick cannot overwrite recorded silence.
        assert!(!ks.set_data(ev(6)));
        assert_eq!(ks.kind_at(Timestamp(6)), TickKind::S);
        assert_eq!(ks.doubt_horizon(Timestamp::ZERO), Timestamp(0));
        ks.set_silence(Timestamp(1), Timestamp(2));
        assert_eq!(ks.doubt_horizon(Timestamp::ZERO), Timestamp(7));
    }

    #[test]
    fn duplicate_data_is_rejected() {
        let mut ks = KnowledgeStream::new();
        assert!(ks.set_data(ev(5)));
        assert!(!ks.set_data(ev(5)));
        assert_eq!(ks.data_len(), 1);
    }

    #[test]
    fn lost_prefix_swallows_information() {
        let mut ks = KnowledgeStream::new();
        ks.set_data(ev(2));
        ks.set_silence(Timestamp(3), Timestamp(8));
        ks.set_lost_prefix(Timestamp(5));
        assert_eq!(ks.kind_at(Timestamp(2)), TickKind::L);
        assert_eq!(ks.kind_at(Timestamp(5)), TickKind::L);
        assert_eq!(ks.kind_at(Timestamp(6)), TickKind::S);
        assert_eq!(ks.lost_to(), Timestamp(5));
        // Regression ignored.
        ks.set_lost_prefix(Timestamp(3));
        assert_eq!(ks.lost_to(), Timestamp(5));
        // Doubt horizon counts L as known.
        assert_eq!(ks.doubt_horizon(Timestamp::ZERO), Timestamp(8));
    }

    #[test]
    fn base_prefix_drops_state_and_reports_s() {
        let mut ks = KnowledgeStream::new();
        ks.set_data(ev(2));
        ks.set_silence(Timestamp(3), Timestamp(10));
        ks.advance_base(Timestamp(6));
        assert_eq!(ks.data_len(), 0);
        assert_eq!(ks.kind_at(Timestamp(2)), TickKind::S); // coarse history
        assert_eq!(ks.kind_at(Timestamp(7)), TickKind::S); // split span survives
        assert_eq!(ks.doubt_horizon(Timestamp(6)), Timestamp(10));
    }

    #[test]
    fn q_ranges_finds_holes() {
        let mut ks = KnowledgeStream::new();
        ks.set_silence(Timestamp(2), Timestamp(3));
        ks.set_data(ev(6));
        let qs = ks.q_ranges(Timestamp(1), Timestamp(8));
        assert_eq!(
            qs,
            vec![
                (Timestamp(1), Timestamp(1)),
                (Timestamp(4), Timestamp(5)),
                (Timestamp(7), Timestamp(8)),
            ]
        );
        assert!(ks.q_ranges(Timestamp(2), Timestamp(3)).is_empty());
    }

    #[test]
    fn q_ranges_open_ended() {
        let mut ks = KnowledgeStream::new();
        ks.set_silence(Timestamp(1), Timestamp(4));
        let qs = ks.q_ranges(Timestamp(1), Timestamp::MAX);
        assert_eq!(qs, vec![(Timestamp(5), Timestamp::MAX)]);
    }

    #[test]
    fn export_range_roundtrips_into_apply() {
        let mut ks = KnowledgeStream::new();
        ks.set_lost_prefix(Timestamp(2));
        ks.set_silence(Timestamp(3), Timestamp(4));
        ks.set_data(ev(5));
        ks.set_silence(Timestamp(6), Timestamp(9));
        ks.set_data(ev(11));

        let parts = ks.export_range(Timestamp(1), Timestamp(12));
        let mut rebuilt = KnowledgeStream::new();
        for p in &parts {
            rebuilt.apply(p);
        }
        for t in 1..=12u64 {
            assert_eq!(
                rebuilt.kind_at(Timestamp(t)),
                ks.kind_at(Timestamp(t)),
                "tick {t}"
            );
        }
    }

    #[test]
    fn export_range_clips() {
        let mut ks = KnowledgeStream::new();
        ks.set_silence(Timestamp(1), Timestamp(10));
        let parts = ks.export_range(Timestamp(4), Timestamp(6));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].range(), (Timestamp(4), Timestamp(6)));
    }

    #[test]
    fn events_in_is_half_open_below() {
        let mut ks = KnowledgeStream::new();
        ks.set_data(ev(5));
        ks.set_data(ev(6));
        let v: Vec<u64> = ks
            .events_in(Timestamp(5), Timestamp(6))
            .map(|e| e.ts.0)
            .collect();
        assert_eq!(v, vec![6]);
    }

    #[test]
    fn with_base_seeds_consumed_prefix() {
        let mut ks = KnowledgeStream::with_base(Timestamp(100));
        // Knowledge below the base is ignored.
        assert!(!ks.set_data(ev(99)));
        ks.set_silence(Timestamp(50), Timestamp(150));
        assert_eq!(ks.doubt_horizon(Timestamp(100)), Timestamp(150));
        assert!(ks.q_ranges(Timestamp(1), Timestamp(100)).is_empty());
    }
}
