//! Downstream interest tracking for nack-response routing.

use gryphon_types::Timestamp;

/// Remembers which downstream (child link or local catchup stream) asked
/// for which tick ranges, so recovered knowledge is forwarded only where
/// it is missing.
///
/// New (non-recovery) knowledge always flows to every child; this map only
/// routes *nack responses*, so its size is bounded by outstanding
/// recovery, which nack consolidation keeps small.
///
/// # Examples
///
/// ```
/// use gryphon_streams::InterestMap;
/// use gryphon_types::Timestamp;
///
/// let mut im: InterestMap<u32> = InterestMap::new();
/// im.register(7, Timestamp(1), Timestamp(10));
/// im.register(9, Timestamp(5), Timestamp(6));
/// let mut who = im.interested(Timestamp(5), Timestamp(5));
/// who.sort();
/// assert_eq!(who, vec![7, 9]);
/// im.discharge(Timestamp(1), Timestamp(10));
/// assert!(im.interested(Timestamp(5), Timestamp(5)).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct InterestMap<C> {
    entries: Vec<(u64, u64, C)>,
}

impl<C> Default for InterestMap<C> {
    fn default() -> Self {
        InterestMap {
            entries: Vec::new(),
        }
    }
}

impl<C: Copy + PartialEq> InterestMap<C> {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `who` wants `[from, to]`. Adjacent/overlapping ranges
    /// from the same requester are merged.
    pub fn register(&mut self, who: C, from: Timestamp, to: Timestamp) {
        let (mut lo, mut hi) = (from.0, to.0);
        self.entries.retain(|&(s, e, c)| {
            if c == who && s <= hi.saturating_add(1) && e.saturating_add(1) >= lo {
                lo = lo.min(s);
                hi = hi.max(e);
                false
            } else {
                true
            }
        });
        self.entries.push((lo, hi, who));
    }

    /// All requesters whose interest overlaps `[from, to]` (deduplicated,
    /// unspecified order).
    pub fn interested(&self, from: Timestamp, to: Timestamp) -> Vec<C> {
        let mut out: Vec<C> = Vec::new();
        for &(s, e, c) in &self.entries {
            if s <= to.0 && e >= from.0 && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }

    /// Removes interest overlapping `[from, to]` (knowledge was forwarded),
    /// trimming partial overlaps.
    pub fn discharge(&mut self, from: Timestamp, to: Timestamp) {
        let mut next = Vec::with_capacity(self.entries.len());
        for &(s, e, c) in &self.entries {
            if s > to.0 || e < from.0 {
                next.push((s, e, c));
                continue;
            }
            if s < from.0 {
                next.push((s, from.0 - 1, c));
            }
            if e > to.0 {
                next.push((to.0 + 1, e, c));
            }
        }
        self.entries = next;
    }

    /// Drops all interest of `who` (link closed / catchup stream removed).
    pub fn remove_requester(&mut self, who: C) {
        self.entries.retain(|&(_, _, c)| c != who);
    }

    /// `true` when nobody is waiting for anything.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of tracked (range, requester) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp(v)
    }

    #[test]
    fn register_merges_same_requester() {
        let mut im: InterestMap<u8> = InterestMap::new();
        im.register(1, ts(1), ts(5));
        im.register(1, ts(6), ts(10)); // adjacent → merged
        assert_eq!(im.len(), 1);
        im.register(2, ts(3), ts(4)); // different requester → separate
        assert_eq!(im.len(), 2);
    }

    #[test]
    fn interested_overlap_semantics() {
        let mut im: InterestMap<u8> = InterestMap::new();
        im.register(1, ts(10), ts(20));
        assert!(im.interested(ts(1), ts(9)).is_empty());
        assert_eq!(im.interested(ts(20), ts(30)), vec![1]);
        assert_eq!(im.interested(ts(1), ts(10)), vec![1]);
    }

    #[test]
    fn discharge_trims_edges() {
        let mut im: InterestMap<u8> = InterestMap::new();
        im.register(1, ts(1), ts(10));
        im.discharge(ts(4), ts(6));
        assert_eq!(im.interested(ts(4), ts(6)), Vec::<u8>::new());
        assert_eq!(im.interested(ts(1), ts(3)), vec![1]);
        assert_eq!(im.interested(ts(7), ts(10)), vec![1]);
    }

    #[test]
    fn remove_requester_clears_only_theirs() {
        let mut im: InterestMap<u8> = InterestMap::new();
        im.register(1, ts(1), ts(5));
        im.register(2, ts(1), ts(5));
        im.remove_requester(1);
        assert_eq!(im.interested(ts(1), ts(5)), vec![2]);
        assert!(!im.is_empty());
    }
}
