//! Knowledge and curiosity stream data structures (paper §3).
//!
//! Message routing and recovery in Gryphon is organized as a tree of
//! **knowledge streams** (flowing down from each pubend) and **curiosity
//! streams** (nacks flowing up). A knowledge stream assigns one of four
//! states to every tick of a pubend's time line — `Q` (unknown), `S`
//! (silence), `D` (data), `L` (lost) — and the whole protocol is algebra
//! over spans of those states:
//!
//! * [`KnowledgeStream`] stores `S`/`D`/`L` knowledge in coalesced
//!   interval maps (with `Q` implicit), computes the **doubt horizon**
//!   (the largest prefix of known ticks) and yields the `Q` ranges that
//!   drive nack generation;
//! * [`CuriosityStream`] tracks outstanding nacked ranges with retry
//!   bookkeeping, consolidating duplicate interest so each hole is
//!   requested upstream once;
//! * [`InterestMap`] remembers *which downstream requested which range*,
//!   so an intermediate broker forwards recovered knowledge only to the
//!   children that were missing it.
//!
//! # Examples
//!
//! ```
//! use gryphon_streams::KnowledgeStream;
//! use gryphon_types::{Event, PubendId, TickKind, Timestamp};
//!
//! let mut ks = KnowledgeStream::new();
//! ks.set_silence(Timestamp(1), Timestamp(4));
//! let e = Event::builder(PubendId(0)).build_ref(Timestamp(5));
//! ks.set_data(e);
//! // Ticks 1..=5 are all known, so the doubt horizon from 0 is 5.
//! assert_eq!(ks.doubt_horizon(Timestamp::ZERO), Timestamp(5));
//! assert_eq!(ks.kind_at(Timestamp(6)), TickKind::Q);
//! ```

mod batch;
mod curiosity;
mod interest;
mod knowledge;

pub use batch::push_coalesced;
pub use curiosity::{CuriosityStream, RetryPolicy};
pub use interest::InterestMap;
pub use knowledge::KnowledgeStream;

#[cfg(test)]
mod prop_tests;
