//! Property tests for the stream algebra.
//!
//! The reference model is a dense `Vec<TickKind>` over a small tick
//! universe; every operation is applied to both representations and the
//! results compared tick-by-tick.

use crate::{push_coalesced, CuriosityStream, KnowledgeStream};
use gryphon_types::msg::KnowledgePart;
use gryphon_types::{Event, PubendId, TickKind, Timestamp};
use proptest::prelude::*;

const UNIVERSE: u64 = 64;

#[derive(Debug, Clone)]
enum KOp {
    Data(u64),
    Silence(u64, u64),
    Lost(u64),
}

fn arb_kop() -> impl Strategy<Value = KOp> {
    prop_oneof![
        (1..UNIVERSE).prop_map(KOp::Data),
        (1..UNIVERSE, 0..8u64).prop_map(|(a, len)| KOp::Silence(a, (a + len).min(UNIVERSE - 1))),
        (1..UNIVERSE / 2).prop_map(KOp::Lost),
    ]
}

/// Dense reference model of a knowledge stream.
#[derive(Debug, Clone)]
struct Model {
    ticks: Vec<TickKind>, // index 1..UNIVERSE used
    lost_to: u64,
}

impl Model {
    fn new() -> Self {
        Model {
            ticks: vec![TickKind::Q; UNIVERSE as usize],
            lost_to: 0,
        }
    }

    fn apply(&mut self, op: &KOp) {
        match *op {
            KOp::Data(t) => {
                if t > self.lost_to && self.ticks[t as usize] == TickKind::Q {
                    self.ticks[t as usize] = TickKind::D;
                }
            }
            KOp::Silence(a, b) => {
                for t in a.max(self.lost_to + 1)..=b {
                    if self.ticks[t as usize] == TickKind::Q {
                        self.ticks[t as usize] = TickKind::S;
                    }
                }
            }
            KOp::Lost(to) => {
                if to > self.lost_to {
                    self.lost_to = to;
                    for t in 1..=to {
                        self.ticks[t as usize] = TickKind::L;
                    }
                }
            }
        }
    }

    fn doubt_horizon(&self, from: u64) -> u64 {
        let mut t = from;
        while t + 1 < UNIVERSE && self.ticks[(t + 1) as usize] != TickKind::Q {
            t += 1;
        }
        t
    }

    fn q_ranges(&self, from: u64, to: u64) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        for t in from.max(1)..=to.min(UNIVERSE - 1) {
            if self.ticks[t as usize] == TickKind::Q {
                match out.last_mut() {
                    Some(last) if last.1 + 1 == t => last.1 = t,
                    _ => out.push((t, t)),
                }
            }
        }
        out
    }
}

fn ev(ts: u64) -> gryphon_types::EventRef {
    Event::builder(PubendId(0)).build_ref(Timestamp(ts))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// KnowledgeStream ≡ dense model over arbitrary operation sequences.
    #[test]
    fn knowledge_stream_equals_model(ops in prop::collection::vec(arb_kop(), 1..40)) {
        let mut ks = KnowledgeStream::new();
        let mut model = Model::new();
        for op in &ops {
            model.apply(op);
            match *op {
                KOp::Data(t) => {
                    ks.set_data(ev(t));
                }
                KOp::Silence(a, b) => ks.set_silence(Timestamp(a), Timestamp(b)),
                KOp::Lost(to) => ks.set_lost_prefix(Timestamp(to)),
            }
            // Tick-by-tick equality.
            for t in 1..UNIVERSE {
                prop_assert_eq!(
                    ks.kind_at(Timestamp(t)),
                    model.ticks[t as usize],
                    "tick {} after {:?}", t, op
                );
            }
            prop_assert_eq!(ks.doubt_horizon(Timestamp::ZERO).0, model.doubt_horizon(0));
            let got: Vec<(u64, u64)> = ks
                .q_ranges(Timestamp(1), Timestamp(UNIVERSE - 1))
                .into_iter()
                .map(|(a, b)| (a.0, b.0))
                .collect();
            prop_assert_eq!(got, model.q_ranges(1, UNIVERSE - 1));
        }
    }

    /// export_range → apply reproduces the stream exactly over any window.
    #[test]
    fn export_apply_roundtrip(
        ops in prop::collection::vec(arb_kop(), 1..30),
        lo in 1..UNIVERSE,
        len in 0..UNIVERSE,
    ) {
        let hi = (lo + len).min(UNIVERSE - 1);
        let mut ks = KnowledgeStream::new();
        for op in &ops {
            match *op {
                KOp::Data(t) => {
                    ks.set_data(ev(t));
                }
                KOp::Silence(a, b) => ks.set_silence(Timestamp(a), Timestamp(b)),
                KOp::Lost(to) => ks.set_lost_prefix(Timestamp(to)),
            }
        }
        let parts = ks.export_range(Timestamp(lo), Timestamp(hi));
        let mut rebuilt = KnowledgeStream::new();
        for p in &parts {
            rebuilt.apply(p);
        }
        for t in lo..=hi {
            // L in the source may rebuild as a longer L prefix only if the
            // export started above 1; but within the window kinds match.
            prop_assert_eq!(
                rebuilt.kind_at(Timestamp(t)),
                ks.kind_at(Timestamp(t)),
                "tick {} in window {}..={}", t, lo, hi
            );
        }
        // Parts are in ascending, non-overlapping order.
        let mut prev_end = 0u64;
        for p in &parts {
            let (f, t) = p.range();
            prop_assert!(f.0 > prev_end || prev_end == 0, "parts out of order");
            prop_assert!(f <= t);
            prev_end = t.0;
        }
    }

    /// Batcher coalescing preserves apply-semantics: feeding a part
    /// sequence through `push_coalesced` and applying the (shorter) result
    /// leaves a knowledge stream in exactly the state the originals would
    /// have, tick-for-tick and under `export_range` round-trip.
    #[test]
    fn coalescing_preserves_apply_semantics(
        lost_prefix in 0..4u64,
        runs in prop::collection::vec((0..3u64, 0..4u64, any::<bool>()), 0..24),
    ) {
        // Build an ascending wire-order part sequence the way an IB batch
        // accumulates them: optional lost prefix, then silence runs and
        // data ticks marching forward, with deliberate adjacency so there
        // is something to coalesce.
        let mut original: Vec<KnowledgePart> = Vec::new();
        let mut cursor = 1u64;
        if lost_prefix > 0 {
            original.push(KnowledgePart::Lost {
                from: Timestamp(1),
                to: Timestamp(lost_prefix),
            });
            cursor = lost_prefix + 1;
        }
        for &(gap, len, is_data) in &runs {
            cursor += gap;
            if is_data {
                original.push(KnowledgePart::Data(ev(cursor)));
                cursor += 1;
            } else {
                original.push(KnowledgePart::Silence {
                    from: Timestamp(cursor),
                    to: Timestamp(cursor + len),
                });
                cursor += len + 1;
            }
        }

        let mut coalesced = Vec::new();
        for p in &original {
            push_coalesced(&mut coalesced, p.clone());
        }
        prop_assert!(coalesced.len() <= original.len());
        // Canonical form: no two adjacent parts of the same span kind
        // remain mergeable.
        for w in coalesced.windows(2) {
            let mergeable = matches!(
                (&w[0], &w[1]),
                (KnowledgePart::Silence { .. }, KnowledgePart::Silence { .. })
                    | (KnowledgePart::Lost { .. }, KnowledgePart::Lost { .. })
            ) && w[1].range().0 .0 <= w[0].range().1 .0 + 1;
            prop_assert!(!mergeable, "coalesced output not canonical: {:?}", w);
        }

        let mut a = KnowledgeStream::new();
        let mut b = KnowledgeStream::new();
        for p in &original {
            a.apply(p);
        }
        for p in &coalesced {
            b.apply(p);
        }
        for t in 1..=cursor + 2 {
            prop_assert_eq!(
                a.kind_at(Timestamp(t)),
                b.kind_at(Timestamp(t)),
                "tick {} differs", t
            );
        }
        prop_assert_eq!(
            a.export_range(Timestamp(1), Timestamp(cursor + 2)),
            b.export_range(Timestamp(1), Timestamp(cursor + 2))
        );
    }

    /// Curiosity: the set of outstanding ticks equals (wanted − satisfied),
    /// and fresh-range reporting never duplicates a pending tick.
    #[test]
    fn curiosity_equals_set_model(
        ops in prop::collection::vec(
            (any::<bool>(), 1..UNIVERSE, 0..8u64),
            1..40,
        )
    ) {
        let mut cur = CuriosityStream::new();
        let mut model = vec![false; UNIVERSE as usize]; // outstanding?
        for (i, &(is_add, a, len)) in ops.iter().enumerate() {
            let b = (a + len).min(UNIVERSE - 1);
            if is_add {
                let fresh = cur.add_wanted(Timestamp(a), Timestamp(b), i as u64);
                // Fresh ranges must cover exactly the previously-absent ticks.
                let mut fresh_ticks = vec![false; UNIVERSE as usize];
                for (f, t) in fresh {
                    for x in f.0..=t.0.min(UNIVERSE - 1) {
                        prop_assert!(!model[x as usize], "tick {} re-requested", x);
                        fresh_ticks[x as usize] = true;
                    }
                }
                for x in a..=b {
                    prop_assert_eq!(fresh_ticks[x as usize], !model[x as usize]);
                    model[x as usize] = true;
                }
            } else {
                cur.satisfy(Timestamp(a), Timestamp(b));
                for x in a..=b {
                    model[x as usize] = false;
                }
            }
            let mut got = vec![false; UNIVERSE as usize];
            for (f, t) in cur.outstanding() {
                for x in f.0..=t.0.min(UNIVERSE - 1) {
                    got[x as usize] = true;
                }
            }
            prop_assert_eq!(&got, &model);
        }
    }
}
