//! The curiosity stream: consolidated nack state with retries.

use gryphon_types::Timestamp;
use std::collections::BTreeMap;

/// Retry configuration for outstanding nacks.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Re-nack a range if no knowledge arrived within this many
    /// microseconds.
    pub timeout_us: u64,
    /// Give up (drop the range) after this many retries; `u32::MAX`
    /// effectively retries forever. Exactly-once delivery relies on
    /// eventual success, so brokers use the default.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            // Comfortably above a recovery response's round trip on a
            // loaded link: premature retries trigger duplicate bulk
            // responses and melt the uplink into a retry storm.
            timeout_us: 1_000_000,
            max_retries: u32::MAX,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    end: u64,
    requested_at: u64,
    retries: u32,
}

/// Tracks which tick ranges have been nacked upstream and are still
/// unanswered, consolidating overlapping interest so each hole is
/// requested once (paper: "curiosity streams consolidate nacks from
/// multiple SHBs").
///
/// # Examples
///
/// ```
/// use gryphon_streams::CuriosityStream;
/// use gryphon_types::Timestamp;
///
/// let mut cur = CuriosityStream::new();
/// // First interest in [1,10] is new...
/// let fresh = cur.add_wanted(Timestamp(1), Timestamp(10), 0);
/// assert_eq!(fresh, vec![(Timestamp(1), Timestamp(10))]);
/// // ...overlapping interest is suppressed except the novel part.
/// let fresh = cur.add_wanted(Timestamp(5), Timestamp(12), 0);
/// assert_eq!(fresh, vec![(Timestamp(11), Timestamp(12))]);
/// // Knowledge arriving clears it.
/// cur.satisfy(Timestamp(1), Timestamp(12));
/// assert!(cur.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CuriosityStream {
    /// start → pending range (disjoint, not coalesced across distinct
    /// requests — coalescing would lose per-request retry clocks).
    pending: BTreeMap<u64, Pending>,
    /// Lifetime count of requested ticks already covered by outstanding
    /// interest — the work the consolidation saved the uplink.
    suppressed_ticks: u64,
}

impl CuriosityStream {
    /// An empty curiosity stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Number of outstanding ranges.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Total outstanding ticks (flow-control accounting). Open-ended
    /// ranges saturate.
    pub fn outstanding_ticks(&self) -> u64 {
        self.pending
            .iter()
            .fold(0u64, |acc, (&s, p)| acc.saturating_add(p.end - s + 1))
    }

    /// Lifetime count of requested ticks suppressed because they were
    /// already pending (consolidation effectiveness; survives
    /// [`CuriosityStream::clear`]).
    pub fn suppressed_ticks(&self) -> u64 {
        self.suppressed_ticks
    }

    /// Registers interest in the inclusive range `[from, to]` at time
    /// `now_us`, returning the sub-ranges that were **not** already
    /// pending — the caller forwards exactly those upstream.
    pub fn add_wanted(
        &mut self,
        from: Timestamp,
        to: Timestamp,
        now_us: u64,
    ) -> Vec<(Timestamp, Timestamp)> {
        let mut fresh = Vec::new();
        let mut cursor = from.0.max(1);
        let hi = to.0;
        while cursor <= hi {
            // Is `cursor` inside an existing pending range?
            if let Some((&s, p)) = self.pending.range(..=cursor).next_back() {
                if p.end >= cursor {
                    let covered_to = p.end.min(hi);
                    self.suppressed_ticks = self
                        .suppressed_ticks
                        .saturating_add(covered_to - cursor + 1);
                    cursor = p.end.saturating_add(1);
                    continue;
                }
                let _ = s;
            }
            // Fresh run until the next pending range (or hi).
            let run_end = self
                .pending
                .range(cursor..)
                .next()
                .map(|(&s, _)| s - 1)
                .unwrap_or(u64::MAX)
                .min(hi);
            self.pending.insert(
                cursor,
                Pending {
                    end: run_end,
                    requested_at: now_us,
                    retries: 0,
                },
            );
            fresh.push((Timestamp(cursor), Timestamp(run_end)));
            cursor = run_end.saturating_add(1);
            if run_end == u64::MAX {
                break;
            }
        }
        fresh
    }

    /// Clears interest over `[from, to]` because knowledge arrived.
    /// Partially covered pending ranges are trimmed/split.
    pub fn satisfy(&mut self, from: Timestamp, to: Timestamp) {
        let lo = from.0;
        let hi = to.0;
        // Predecessor range possibly overlapping from the left.
        if let Some((&s, &p)) = self.pending.range(..lo).next_back() {
            if p.end >= lo {
                self.pending.remove(&s);
                self.pending.insert(s, Pending { end: lo - 1, ..p });
                if p.end > hi {
                    self.pending.insert(hi + 1, Pending { end: p.end, ..p });
                }
            }
        }
        // Ranges starting inside [lo, hi].
        let starts: Vec<u64> = self.pending.range(lo..=hi).map(|(&s, _)| s).collect();
        for s in starts {
            let p = self.pending.remove(&s).expect("key from range");
            if p.end > hi {
                self.pending.insert(hi + 1, Pending { end: p.end, ..p });
            }
        }
    }

    /// Ranges whose last request timed out: bumps their retry clock to
    /// `now_us` and returns them for re-nacking. Ranges past
    /// `policy.max_retries` are dropped (and *not* returned).
    pub fn due_retries(&mut self, now_us: u64, policy: RetryPolicy) -> Vec<(Timestamp, Timestamp)> {
        let mut out = Vec::new();
        let mut drop_keys = Vec::new();
        for (&s, p) in self.pending.iter_mut() {
            if now_us.saturating_sub(p.requested_at) >= policy.timeout_us {
                if p.retries >= policy.max_retries {
                    drop_keys.push(s);
                } else {
                    p.retries += 1;
                    p.requested_at = now_us;
                    out.push((Timestamp(s), Timestamp(p.end)));
                }
            }
        }
        for k in drop_keys {
            self.pending.remove(&k);
        }
        out
    }

    /// All currently outstanding ranges (ascending).
    pub fn outstanding(&self) -> Vec<(Timestamp, Timestamp)> {
        self.pending
            .iter()
            .map(|(&s, p)| (Timestamp(s), Timestamp(p.end)))
            .collect()
    }

    /// Drops everything (used when the owner discards a catchup stream).
    pub fn clear(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp(v)
    }

    #[test]
    fn consolidation_suppresses_overlap() {
        let mut c = CuriosityStream::new();
        assert_eq!(c.add_wanted(ts(5), ts(10), 0), vec![(ts(5), ts(10))]);
        assert_eq!(
            c.add_wanted(ts(1), ts(20), 0),
            vec![(ts(1), ts(4)), (ts(11), ts(20))]
        );
        assert!(c.add_wanted(ts(2), ts(19), 0).is_empty());
        assert_eq!(c.outstanding_ticks(), 20);
        // Second call re-requested [5,10] (6 ticks), third [2,19] (18).
        assert_eq!(c.suppressed_ticks(), 24);
    }

    #[test]
    fn satisfy_trims_and_splits() {
        let mut c = CuriosityStream::new();
        c.add_wanted(ts(1), ts(10), 0);
        c.satisfy(ts(4), ts(6));
        assert_eq!(c.outstanding(), vec![(ts(1), ts(3)), (ts(7), ts(10))]);
        c.satisfy(ts(1), ts(3));
        c.satisfy(ts(7), ts(10));
        assert!(c.is_empty());
    }

    #[test]
    fn satisfy_across_many_ranges() {
        let mut c = CuriosityStream::new();
        c.add_wanted(ts(1), ts(2), 0);
        c.add_wanted(ts(5), ts(6), 0);
        c.add_wanted(ts(9), ts(10), 0);
        c.satisfy(ts(2), ts(9));
        assert_eq!(c.outstanding(), vec![(ts(1), ts(1)), (ts(10), ts(10))]);
    }

    #[test]
    fn retries_fire_after_timeout() {
        let mut c = CuriosityStream::new();
        let policy = RetryPolicy {
            timeout_us: 100,
            max_retries: 2,
        };
        c.add_wanted(ts(1), ts(5), 0);
        assert!(c.due_retries(50, policy).is_empty());
        assert_eq!(c.due_retries(100, policy), vec![(ts(1), ts(5))]);
        // Clock was bumped; not due again immediately.
        assert!(c.due_retries(150, policy).is_empty());
        assert_eq!(c.due_retries(200, policy), vec![(ts(1), ts(5))]);
        // Third timeout exceeds max_retries → dropped.
        assert!(c.due_retries(300, policy).is_empty());
        assert!(c.is_empty());
    }

    #[test]
    fn open_ended_interest() {
        let mut c = CuriosityStream::new();
        let fresh = c.add_wanted(ts(100), Timestamp::MAX, 0);
        assert_eq!(fresh, vec![(ts(100), Timestamp::MAX)]);
        // Satisfying a prefix leaves the open tail pending.
        c.satisfy(ts(100), ts(200));
        assert_eq!(c.outstanding(), vec![(ts(201), Timestamp::MAX)]);
    }

    #[test]
    fn clear_empties() {
        let mut c = CuriosityStream::new();
        c.add_wanted(ts(1), ts(5), 0);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.outstanding_ticks(), 0);
    }

    #[test]
    fn zero_tick_never_requested() {
        let mut c = CuriosityStream::new();
        let fresh = c.add_wanted(Timestamp::ZERO, ts(3), 0);
        assert_eq!(fresh, vec![(ts(1), ts(3))]);
    }
}
