//! Offline stand-in for `serde`.
//!
//! Only the names matter here: the workspace writes
//! `#[derive(Serialize, Deserialize)]` and `use serde::{..}` on plain
//! data types but performs no actual serialization (storage uses a
//! hand-rolled codec). The traits are empty markers and the derives
//! (re-exported from the in-tree `serde_derive`) expand to nothing.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
