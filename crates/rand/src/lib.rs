//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` it actually uses: [`rngs::SmallRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256++ — the same family the real `SmallRng` uses on 64-bit
//! targets — so it is fast, deterministic per seed, and statistically
//! adequate for simulation workloads. It is **not** cryptographically
//! secure, exactly like the crate it replaces.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (distinct seeds give
    /// independent streams; identical seeds give identical streams).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits mapped to [0, 1), as in rand's Standard.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw from `[0, span)` (`span == 0` means the full
/// 2^64 range) via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1i64..=50);
            assert!((1..=50).contains(&w));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let x = r.gen_range(0u64..=0);
            assert_eq!(x, 0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }
}
