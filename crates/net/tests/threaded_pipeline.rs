//! The full broker pipeline on real OS threads: the same state machines
//! the simulator drives, now under true concurrency.

use gryphon::{Broker, BrokerConfig, PublisherClient, SubscriberClient, SubscriberConfig};
use gryphon_net::{storage_factory, NetBuilder};
use gryphon_types::{NodeId, PubendId, SubscriberId};
use std::time::Duration;

#[test]
fn publish_to_delivery_over_threads() {
    // Fast timers so the wall-clock run stays short.
    let config = BrokerConfig {
        phb_commit_interval_us: 500,
        phb_commit_latency_us: 200,
        pfs_sync_interval_us: 1_000,
        pubend_silence_interval_us: 2_000,
        release_interval_us: 10_000,
        ..BrokerConfig::default()
    };
    // Ids are assigned in registration order: phb=0, shb=1, sub=2, pub=3.
    let mut builder = NetBuilder::new();
    // `storage_factory`: heap media by default; real files + real fsyncs
    // through the group-commit pipeline with GRYPHON_STORAGE_DIR set.
    let mut phb_node =
        Broker::new(0, storage_factory("tp-phb"), config.clone()).hosting_pubends([PubendId(0)]);
    phb_node.add_child(NodeId(1));
    let _phb = builder.add_node("phb", phb_node);
    let mut shb_node = Broker::new(1, storage_factory("tp-shb"), config).hosting_subscribers();
    shb_node.set_parent(NodeId(0));
    let shb = builder.add_node("shb", shb_node);
    let sub = builder.add_node(
        "sub",
        SubscriberClient::new(
            SubscriberId(1),
            shb.id(),
            "class = 0",
            SubscriberConfig {
                ack_interval_us: 5_000,
                probe_interval_us: 50_000,
                ..SubscriberConfig::default()
            },
        ),
    );
    let publisher = builder.add_node(
        "pub",
        PublisherClient::new(NodeId(0), PubendId(0), 2_000.0).with_attrs(|seq, _| {
            let mut a = gryphon_types::Attributes::new();
            a.insert("class".into(), ((seq % 2) as i64).into());
            a
        }),
    );
    let net = builder.start();
    net.run_for(Duration::from_millis(700));
    let result = net.stop();
    let client = result.node(sub);
    let published = result.node(publisher).published();
    assert!(published > 500, "publisher ran: {published}");
    assert_eq!(
        client.order_violations(),
        0,
        "order must hold under threads"
    );
    assert_eq!(client.gaps_received(), 0);
    assert!(
        client.events_received() > 100,
        "delivery across threads: {} events of {published} published",
        client.events_received()
    );
}
