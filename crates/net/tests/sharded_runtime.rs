//! The broker pipeline sharded across worker threads by pubend.
//!
//! One *logical* broker backed by 1 vs 4 worker shards: shard `i` hosts
//! the pubends with `p % n == i` (matching the runtime's routing rule),
//! subscriber control traffic is broadcast so every shard registers the
//! subscription, and each shard serves deliveries for its own pubends.
//! Delivery semantics must be unchanged by sharding: per-pubend order
//! holds, no gaps, the delivered `_seq` sequence is contiguous from 0
//! for every subscriber (identical ground truth in both configurations,
//! modulo wall-clock run length), and no protocol watchdog fires.

use gryphon::{Broker, BrokerConfig, PublisherClient, SubscriberClient, SubscriberConfig};
use gryphon_net::NetBuilder;
use gryphon_storage::MemFactory;
use gryphon_types::{PubendId, SubscriberId};
use std::time::{Duration, Instant};

const PUBENDS: u32 = 4;
const SUBS: u64 = 2;

/// Per-subscriber, per-pubend delivered `_seq` sequences.
type Deliveries = Vec<Vec<Vec<i64>>>;

fn run(shards: usize) -> Deliveries {
    let config = BrokerConfig {
        phb_commit_interval_us: 500,
        phb_commit_latency_us: 200,
        pfs_sync_interval_us: 1_000,
        pubend_silence_interval_us: 2_000,
        release_interval_us: 10_000,
        ..BrokerConfig::default()
    };
    let mut builder = NetBuilder::new();
    // Combined brokers (pubends + subscribers); shard i hosts the
    // pubends the runtime routes to it. Distinct broker ids keep the
    // per-shard storage namespaces apart.
    let broker_shards: Vec<Broker> = (0..shards)
        .map(|i| {
            let hosted: Vec<PubendId> = (0..PUBENDS)
                .filter(|p| *p as usize % shards == i)
                .map(PubendId)
                .collect();
            Broker::new(i as u32, Box::new(MemFactory::new()), config.clone())
                .hosting_pubends(hosted)
                .hosting_subscribers()
        })
        .collect();
    let broker = builder.add_sharded_node("broker", broker_shards);
    let mut subs = Vec::new();
    for s in 0..SUBS {
        subs.push(builder.add_node(
            &format!("sub{s}"),
            SubscriberClient::new(
                SubscriberId(s + 1),
                broker.id(),
                "class = 0",
                SubscriberConfig {
                    ack_interval_us: 5_000,
                    // No broker traffic flows until the publishers start
                    // (the constream is empty, so no silences either);
                    // keep the liveness probe from declaring a crash in
                    // that window.
                    probe_interval_us: 10_000_000,
                    collect: true,
                    ..SubscriberConfig::default()
                },
            ),
        ));
    }
    let mut publishers = Vec::new();
    for p in 0..PUBENDS {
        publishers.push(
            builder.add_node(
                &format!("pub{p}"),
                PublisherClient::new(broker.id(), PubendId(p), 1_000.0)
                    // Start publishing only after subscribers had time to
                    // connect, so every delivery stream begins at seq 0.
                    .starting_at(200_000)
                    .with_attrs(|_, _| {
                        let mut a = gryphon_types::Attributes::new();
                        a.insert("class".into(), 0i64.into());
                        a
                    }),
            ),
        );
    }
    let net = builder.start();
    // Every subscriber's broadcast Connect must reach every shard
    // before the publishers start.
    let want_connects = (SUBS as usize * shards) as f64;
    let deadline = Instant::now() + Duration::from_millis(150);
    while net.counter("shb.connects") < want_connects && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        net.counter("shb.connects"),
        want_connects,
        "every shard must register every subscriber before publishing starts"
    );
    net.run_for(Duration::from_millis(700));
    let result = net.stop();
    assert_eq!(
        result.watchdog_violations(),
        0.0,
        "protocol watchdogs must stay silent under {shards} shards"
    );
    let mut published = 0;
    for h in &publishers {
        published += result.node(*h).published();
    }
    assert!(published > 200, "publishers ran: {published}");
    let mut out = Vec::new();
    for h in &subs {
        let client = result.node(*h);
        assert_eq!(client.order_violations(), 0, "order under {shards} shards");
        assert_eq!(client.gaps_received(), 0, "gaps under {shards} shards");
        assert!(
            client.events_received() > 50,
            "delivery under {shards} shards: {} events",
            client.events_received()
        );
        let mut per_pubend = vec![Vec::new(); PUBENDS as usize];
        for r in client.received() {
            if r.kind == "event" {
                per_pubend[r.pubend.0 as usize].push(r.seq.expect("publisher stamps _seq"));
            }
        }
        out.push(per_pubend);
    }
    out
}

/// Checks that every per-pubend sequence is exactly `0, 1, 2, …` — the
/// subscriber saw the full ground-truth stream in publish order.
fn assert_contiguous(deliveries: &Deliveries, label: &str) {
    for (s, per_pubend) in deliveries.iter().enumerate() {
        for (p, seqs) in per_pubend.iter().enumerate() {
            assert!(
                !seqs.is_empty(),
                "{label}: sub{s} got nothing from pubend {p}"
            );
            for (i, &seq) in seqs.iter().enumerate() {
                assert_eq!(
                    seq, i as i64,
                    "{label}: sub{s} pubend {p} diverges from ground truth at position {i}"
                );
            }
        }
    }
}

#[test]
fn sharding_preserves_delivery_semantics() {
    let unsharded = run(1);
    assert_contiguous(&unsharded, "1 shard");
    let sharded = run(4);
    assert_contiguous(&sharded, "4 shards");
    // Both configurations delivered a prefix of the same ground-truth
    // sequence per (subscriber, pubend); only the wall-clock-dependent
    // lengths may differ.
    for s in 0..SUBS as usize {
        for p in 0..PUBENDS as usize {
            let n = unsharded[s][p].len().min(sharded[s][p].len());
            assert_eq!(
                unsharded[s][p][..n],
                sharded[s][p][..n],
                "sub{s} pubend {p}: sharded and unsharded histories diverge"
            );
        }
    }
}
