//! Threaded runtime for Gryphon nodes.
//!
//! The same [`Node`] state machines that run under the
//! deterministic simulator run here on **real OS threads** connected by
//! crossbeam channels, with wall-clock timers. The paper's wall-clock
//! microbenchmarks and the `rt_pipeline`/`rt_shard` benches use this
//! runtime; the figure reproductions use the simulator (deterministic
//! virtual time).
//!
//! Differences from the simulator, by design:
//!
//! * links deliver immediately (no modeled latency — thread scheduling
//!   provides real, not modeled, delays), so use this runtime for
//!   *throughput*, not latency shapes;
//! * there is no crash injection;
//! * determinism is not guaranteed.
//!
//! # Sharding
//!
//! A *logical* node may be backed by several worker threads
//! ([`NetBuilder::add_sharded_node`]), each running its own state
//! machine over a disjoint subset of pubends. Messages addressed to the
//! logical node are routed by [`NetMsg::pubend_key`]: pubend-scoped
//! traffic goes to the shard owning `pubend % n` (so everything for one
//! pubend stays ordered on one thread — each `PubendPipeline` has
//! exactly one owner), client/interest control traffic is broadcast to
//! every shard, and anything else lands on shard 0. Cross-pubend work
//! runs in parallel; per-pubend FIFO order is preserved because
//! crossbeam channels are FIFO per producer and a pubend never changes
//! shards.
//!
//! Each worker owns its own [`Metrics`] and protocol
//! [`Watchdogs`](gryphon_sim::Watchdogs) (no shared lock on the hot
//! path); [`RunningNet::counter`] sums the live per-worker counters and
//! [`RunningNet::stop`] merges everything into one [`NetResult`].
//!
//! # Telemetry
//!
//! [`RunningNet::start_sampler`] arms the wall-clock twin of the
//! simulator's windowed [`Sampler`]: a background thread probes each
//! worker's channel occupancy (`telemetry.queue_depth.w<i>`) and
//! busy/idle utilization (`telemetry.worker_utilization.w<i>`) every
//! interval and records them — plus all protocol gauges and counter
//! rates — into a [`Timeline`] returned via [`RunningNet::telemetry`]
//! and [`NetResult::telemetry`]. Arming telemetry also turns on
//! per-dispatch service-time histograms (`telemetry.service_time_us`).
//! [`RunningNet::serve_metrics`] exposes the same merged snapshot live
//! as Prometheus text over a tiny blocking-TCP endpoint, and
//! [`RunningNet::metrics_snapshot`] gives programmatic mid-run access
//! with documented merge semantics.
//!
//! # Examples
//!
//! ```
//! use gryphon_net::NetBuilder;
//! use gryphon_sim::{Node, NodeCtx, TimerKey};
//! use gryphon_types::{NetMsg, NodeId, SubInterestMsg};
//!
//! struct Counter(u64);
//! impl Node for Counter {
//!     fn on_message(&mut self, _: NodeId, _: NetMsg, _: &mut dyn NodeCtx) { self.0 += 1; }
//!     fn on_timer(&mut self, _: TimerKey, _: &mut dyn NodeCtx) {}
//! }
//!
//! let mut net = NetBuilder::new();
//! let h = net.add_node("counter", Counter(0));
//! let running = net.start();
//! for _ in 0..10 {
//!     running.inject(h.id(), NetMsg::SubInterest(SubInterestMsg { subs: vec![], version: 0 }));
//! }
//! running.run_for(std::time::Duration::from_millis(50));
//! let result = running.stop();
//! assert_eq!(result.node::<Counter>(h).0, 10);
//! ```

use crossbeam::channel::{bounded, Receiver, Sender};
use gryphon_sim::forensics::{self, BusyInterval, Exemplar, ExemplarReservoir, IntervalRing};
use gryphon_sim::sketch::DIM_SUB_BYTES;
use gryphon_sim::telemetry::{Sampler, TextServer, Timeline};
use gryphon_sim::{
    names, Executor, ForensicsConfig, Lineage, Metrics, Node, NodeCtx, PopulationSketch,
    SketchConfig, TimerKey, TraceEvent, TraceRecord, Watchdogs,
};
use gryphon_types::{NetMsg, NodeId};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::TypeId;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Storage profile for threaded-runtime processes: real files — and real
/// fsyncs through the group-commit pipeline — when `GRYPHON_STORAGE_DIR`
/// is set, heap-backed media otherwise.
///
/// The simulator always builds its brokers on
/// [`MemFactory`](gryphon_storage::MemFactory) (deterministic, modeled
/// latency); the threaded runtime is where the durability engine meets an
/// actual device. Benches and integration runs opt in by exporting
/// `GRYPHON_STORAGE_DIR=/path/to/dir`; each call gets its own `tag`
/// subdirectory under that root so concurrent nodes never share a
/// namespace.
pub fn storage_factory(tag: &str) -> Box<dyn gryphon_storage::MediaFactory> {
    match std::env::var_os("GRYPHON_STORAGE_DIR") {
        Some(root) => {
            let dir = std::path::Path::new(&root).join(tag);
            std::fs::create_dir_all(&dir).expect("GRYPHON_STORAGE_DIR must be writable");
            Box::new(gryphon_storage::FileFactory::new(dir).expect("storage dir must open"))
        }
        None => Box::new(gryphon_storage::MemFactory::new()),
    }
}

enum Ev {
    /// A message plus its enqueue instant (stamped only while telemetry
    /// is armed, so the un-profiled hot path never reads the clock) —
    /// the dequeuing worker turns the stamp into `net.queue_wait_us`
    /// and a `queue` interval on its forensics track.
    Msg(NodeId, NetMsg, Option<Instant>),
}

/// Typed handle to a node registered with [`NetBuilder::add_node`] or
/// [`NetBuilder::add_sharded_node`]. The id is the *logical* node id.
pub struct Handle<T> {
    id: NodeId,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Handle<T> {}

impl<T> Handle<T> {
    /// The logical node id.
    pub fn id(&self) -> NodeId {
        self.id
    }
}

impl<T> std::fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Handle({})", self.id)
    }
}

struct Typed<T>(T);

impl<T: Node + 'static> Node for Typed<T> {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx) {
        self.0.on_start(ctx)
    }
    fn on_message(&mut self, from: NodeId, msg: NetMsg, ctx: &mut dyn NodeCtx) {
        self.0.on_message(from, msg, ctx)
    }
    fn on_timer(&mut self, key: TimerKey, ctx: &mut dyn NodeCtx) {
        self.0.on_timer(key, ctx)
    }
    fn on_restart(&mut self, ctx: &mut dyn NodeCtx) {
        self.0.on_restart(ctx)
    }
}

/// One logical node: the worker threads backing it and its handle type.
struct LogicalEntry {
    workers: Vec<usize>,
    type_id: TypeId,
}

/// Routes messages addressed to logical nodes onto worker channels.
#[derive(Clone)]
struct Router {
    senders: Arc<Vec<Sender<Ev>>>,
    logical: Arc<Vec<LogicalEntry>>,
    /// Shared with [`RunningNet`]: when armed, sends carry an enqueue
    /// stamp so queue-wait can be attributed at dequeue.
    tel_enabled: Arc<AtomicBool>,
}

impl Router {
    /// Delivers `msg` to logical node `to` (see the module docs for the
    /// shard-routing policy). `blocking` selects backpressure (harness
    /// injection) vs best-effort (node-to-node sends, where a full
    /// channel behaves like a saturated TCP connection and the
    /// protocols recover via nacks).
    fn deliver(&self, from: NodeId, to: NodeId, msg: NetMsg, blocking: bool) {
        let Some(entry) = self.logical.get(to.0 as usize) else {
            return;
        };
        let n = entry.workers.len();
        let target = if n == 1 {
            Some(entry.workers[0])
        } else {
            match msg.pubend_key() {
                Some(p) => Some(entry.workers[p.0 as usize % n]),
                // Subscription interest and client control traffic is
                // relevant to every shard (each shard matches it against
                // its own pubends); duplicate ConnectOk/Ack handling is
                // idempotent on the client side.
                None => match &msg {
                    NetMsg::Client(_) | NetMsg::SubInterest(_) => None,
                    _ => Some(entry.workers[0]),
                },
            }
        };
        match target {
            Some(w) => self.send_to(w, from, msg, blocking),
            None => {
                for &w in &entry.workers {
                    self.send_to(w, from, msg.clone(), blocking);
                }
            }
        }
    }

    fn send_to(&self, w: usize, from: NodeId, msg: NetMsg, blocking: bool) {
        if let Some(tx) = self.senders.get(w) {
            let enq = self.tel_enabled.load(Ordering::Relaxed).then(Instant::now);
            if blocking {
                let _ = tx.send(Ev::Msg(from, msg, enq));
            } else {
                let _ = tx.try_send(Ev::Msg(from, msg, enq));
            }
        }
    }
}

/// Builder: register nodes, then [`NetBuilder::start`].
pub struct NetBuilder {
    workers: Vec<(String, Box<dyn Node>)>,
    logical: Vec<LogicalEntry>,
}

impl Default for NetBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl NetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        NetBuilder {
            workers: Vec::new(),
            logical: Vec::new(),
        }
    }

    /// Registers a node; its logical id is its registration order.
    pub fn add_node<T: Node + 'static>(&mut self, name: &str, node: T) -> Handle<T> {
        self.add_entry(name, vec![Box::new(Typed(node))], TypeId::of::<Typed<T>>())
    }

    /// Registers a logical node backed by one worker thread per element
    /// of `shards`. Shard `i` owns every pubend with `p.0 % n == i`; see
    /// the module docs for the routing policy. All shards share the one
    /// logical id returned here.
    pub fn add_sharded_node<T: Node + 'static>(&mut self, name: &str, shards: Vec<T>) -> Handle<T> {
        assert!(
            !shards.is_empty(),
            "a sharded node needs at least one shard"
        );
        let boxed: Vec<Box<dyn Node>> = shards
            .into_iter()
            .map(|s| Box::new(Typed(s)) as Box<dyn Node>)
            .collect();
        self.add_entry(name, boxed, TypeId::of::<Typed<T>>())
    }

    fn add_entry<T>(
        &mut self,
        name: &str,
        shards: Vec<Box<dyn Node>>,
        type_id: TypeId,
    ) -> Handle<T> {
        let n = shards.len();
        let mut workers = Vec::with_capacity(n);
        for (i, node) in shards.into_iter().enumerate() {
            let wname = if n == 1 {
                name.to_owned()
            } else {
                format!("{name}.{i}")
            };
            workers.push(self.workers.len());
            self.workers.push((wname, node));
        }
        let id = NodeId(self.logical.len() as u32);
        self.logical.push(LogicalEntry { workers, type_id });
        Handle {
            id,
            _marker: std::marker::PhantomData,
        }
    }

    /// Spawns one thread per worker and starts them (running `on_start`).
    pub fn start(self) -> RunningNet {
        let n = self.workers.len();
        let stop = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = bounded::<Ev>(65_536);
            senders.push(tx);
            receivers.push(rx);
        }
        // Telemetry probes: queue-depth sampling needs each worker's
        // channel occupancy, so keep receiver clones around (they only
        // ever call `len()`, never `recv`).
        let probe_receivers: Vec<Receiver<Ev>> = receivers.iter().map(Receiver::clone).collect();
        // `GRYPHON_PROFILE=1` arms the contention profiler from the very
        // first dispatch (bench baselines run with it on); otherwise
        // profiling turns on when `start_sampler` arms telemetry.
        let profile_env = std::env::var_os("GRYPHON_PROFILE").is_some_and(|v| v != "0");
        let tel_enabled = Arc::new(AtomicBool::new(profile_env));
        let active_ns: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let forensics_cfg = ForensicsConfig::default();
        let intervals: Vec<Arc<Mutex<IntervalRing>>> = (0..n)
            .map(|_| {
                Arc::new(Mutex::new(IntervalRing::new(
                    forensics_cfg.interval_capacity,
                )))
            })
            .collect();
        // Always-on population attribution: one O(K) sketch shard per
        // worker (same discipline as the lineage exemplar reservoirs),
        // merged in worker-index order at stop. Attributions arrive at
        // sweep cadence, not per delivery, so each shard's lock is
        // uncontended in steady state.
        let sketches: Vec<Arc<Mutex<PopulationSketch>>> = (0..n)
            .map(|_| Arc::new(Mutex::new(PopulationSketch::new(SketchConfig::default()))))
            .collect();
        let senders = Arc::new(senders);
        // Worker → logical-id map for event attribution.
        let mut owner = vec![NodeId(0); n];
        for (lid, entry) in self.logical.iter().enumerate() {
            for &w in &entry.workers {
                owner[w] = NodeId(lid as u32);
            }
        }
        let logical = Arc::new(self.logical);
        let router = Router {
            senders: Arc::clone(&senders),
            logical: Arc::clone(&logical),
            tel_enabled: Arc::clone(&tel_enabled),
        };
        let metrics: Vec<Arc<Mutex<Metrics>>> = (0..n)
            .map(|_| Arc::new(Mutex::new(Metrics::default())))
            .collect();
        // Always-on tail forensics: every worker's lineage shard carries
        // an exemplar reservoir from the start (offers are two compares
        // against a cached threshold in steady state), so the slowest
        // end-to-end spans of any run are attributable after the fact.
        let lineages: Vec<Arc<Mutex<Lineage>>> = (0..n)
            .map(|_| {
                let mut l = Lineage::default();
                l.arm_exemplars(ExemplarReservoir::new(&forensics_cfg));
                Arc::new(Mutex::new(l))
            })
            .collect();
        let mut joins = Vec::with_capacity(n);
        for (i, ((name, mut node), rx)) in self.workers.into_iter().zip(receivers).enumerate() {
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics[i]);
            let lineage = Arc::clone(&lineages[i]);
            let router = router.clone();
            let me = owner[i];
            let tel_enabled = Arc::clone(&tel_enabled);
            let active_ns = Arc::clone(&active_ns[i]);
            let intervals = Arc::clone(&intervals[i]);
            let sketch = Arc::clone(&sketches[i]);
            joins.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || {
                        let mut worker = Worker {
                            me,
                            index: i as u32,
                            router,
                            metrics,
                            watchdogs: Watchdogs::default(),
                            lineage,
                            epoch,
                            timers: BinaryHeap::new(),
                            rng: SmallRng::seed_from_u64(i as u64),
                            busy_us: 0,
                            tel_enabled,
                            active_ns,
                            intervals,
                            sketch,
                        };
                        worker.with_ctx(|node, ctx| node.on_start(ctx), node.as_mut());
                        loop {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let timeout = worker.next_deadline(Duration::from_millis(20));
                            match rx.recv_timeout(timeout) {
                                Ok(Ev::Msg(from, msg, enq)) => {
                                    worker.note_queue_wait(enq);
                                    worker.with_ctx(
                                        |node, ctx| node.on_message(from, msg, ctx),
                                        node.as_mut(),
                                    );
                                }
                                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                            }
                            worker.fire_due(node.as_mut());
                        }
                        node
                    })
                    .expect("spawn node thread"),
            );
        }
        RunningNet {
            router,
            stop,
            joins,
            metrics,
            lineages,
            logical,
            epoch,
            receivers: probe_receivers,
            tel_enabled,
            active_ns,
            intervals,
            sketches,
            tel_metrics: Arc::new(Mutex::new(Metrics::default())),
            sampler: None,
            scrape: None,
        }
    }
}

#[derive(PartialEq, Eq)]
struct TimerEntry {
    deadline: Instant,
    key: TimerKey,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.deadline.cmp(&self.deadline) // min-heap
    }
}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Worker {
    /// Logical id of the node this worker backs (shared by all shards).
    me: NodeId,
    /// Worker-thread index — the forensics track id in exported traces.
    index: u32,
    router: Router,
    /// This worker's private metrics shard (uncontended in steady state;
    /// [`RunningNet::counter`] locks it briefly to read).
    metrics: Arc<Mutex<Metrics>>,
    /// Per-worker protocol watchdogs fed from this shard's trace stream.
    watchdogs: Watchdogs,
    /// Per-worker delivery-lineage shard, merged deterministically (in
    /// worker-index order) at [`RunningNet::stop`] like the metrics.
    lineage: Arc<Mutex<Lineage>>,
    epoch: Instant,
    timers: BinaryHeap<TimerEntry>,
    rng: SmallRng,
    busy_us: u64,
    /// Set once [`RunningNet::start_sampler`] arms telemetry; gates the
    /// per-dispatch timing below so the hot path pays nothing otherwise.
    tel_enabled: Arc<AtomicBool>,
    /// Wall-clock nanoseconds this worker spent inside node callbacks
    /// (shared with the sampler thread, which derives per-window
    /// busy/idle utilization from its deltas).
    active_ns: Arc<AtomicU64>,
    /// Bounded per-worker busy-interval ring (dispatch/queue slices for
    /// the exported trace); drained at [`RunningNet::stop`].
    intervals: Arc<Mutex<IntervalRing>>,
    /// This worker's population-sketch shard (O(K) memory), fed by
    /// [`NodeCtx::attribute`] and merged in worker-index order at
    /// [`RunningNet::stop`].
    sketch: Arc<Mutex<PopulationSketch>>,
}

impl Worker {
    fn next_deadline(&self, cap: Duration) -> Duration {
        match self.timers.peek() {
            Some(e) => e
                .deadline
                .saturating_duration_since(Instant::now())
                .min(cap),
            None => cap,
        }
    }

    fn fire_due(&mut self, node: &mut dyn Node) {
        loop {
            let due = matches!(self.timers.peek(),
                Some(e) if e.deadline <= Instant::now());
            if !due {
                break;
            }
            let key = self.timers.pop().expect("peeked").key;
            self.with_ctx(|n, ctx| n.on_timer(key, ctx), node);
        }
    }

    /// Attributes the time a just-dequeued message spent in this
    /// worker's channel: the `net.queue_wait_us` histogram plus a
    /// `queue` slice on the worker's forensics track. No-op for
    /// unstamped messages (telemetry was off at enqueue).
    fn note_queue_wait(&mut self, enq: Option<Instant>) {
        let Some(t0) = enq else {
            return;
        };
        let wait = t0.elapsed();
        self.metrics
            .lock()
            .observe(names::NET_QUEUE_WAIT_US, wait.as_secs_f64() * 1e6);
        let start_us = t0.duration_since(self.epoch).as_micros() as u64;
        let dur_us = wait.as_micros() as u64;
        if dur_us > 0 {
            self.intervals.lock().push(BusyInterval {
                track: self.index,
                kind: forensics::KIND_QUEUE,
                start_us,
                dur_us,
            });
        }
    }

    fn with_ctx(&mut self, f: impl FnOnce(&mut dyn Node, &mut dyn NodeCtx), node: &mut dyn Node) {
        // Service-time probe: only timed once telemetry is armed (an
        // `Instant::now()` pair per dispatch is cheap but not free, so
        // the un-sampled hot path skips it entirely).
        let timed = self.tel_enabled.load(Ordering::Relaxed);
        let started = timed.then(Instant::now);
        // Split borrows: move timers out so the ctx can push new ones.
        let mut pending_timers = Vec::new();
        {
            let mut ctx = ThreadCtx {
                worker: self,
                new_timers: &mut pending_timers,
            };
            f(node, &mut ctx);
        }
        if let Some(t0) = started {
            let dt = t0.elapsed();
            self.active_ns
                .fetch_add(dt.as_nanos() as u64, Ordering::Relaxed);
            self.metrics
                .lock()
                .observe(names::TELEMETRY_SERVICE_TIME_US, dt.as_secs_f64() * 1e6);
            let dur_us = dt.as_micros() as u64;
            if dur_us > 0 {
                self.intervals.lock().push(BusyInterval {
                    track: self.index,
                    kind: forensics::KIND_DISPATCH,
                    start_us: t0.duration_since(self.epoch).as_micros() as u64,
                    dur_us,
                });
            }
        }
        for (delay, key) in pending_timers {
            self.timers.push(TimerEntry {
                deadline: Instant::now() + Duration::from_micros(delay),
                key,
            });
        }
    }
}

struct ThreadCtx<'a> {
    worker: &'a mut Worker,
    new_timers: &'a mut Vec<(u64, TimerKey)>,
}

impl NodeCtx for ThreadCtx<'_> {
    fn now_us(&self) -> u64 {
        self.worker.epoch.elapsed().as_micros() as u64
    }

    fn me(&self) -> NodeId {
        self.worker.me
    }

    fn send(&mut self, to: NodeId, msg: NetMsg) {
        // Best-effort: a full channel drops the message, like a
        // saturated TCP connection with a dead reader; the protocols
        // recover via nacks.
        self.worker.router.deliver(self.worker.me, to, msg, false);
    }

    fn set_timer(&mut self, delay_us: u64, key: TimerKey) {
        self.new_timers.push((delay_us, key));
    }

    fn rng(&mut self) -> &mut SmallRng {
        &mut self.worker.rng
    }

    fn work(&mut self, cost_us: u64) {
        self.worker.busy_us += cost_us;
    }

    fn record(&mut self, series: &str, value: f64) {
        let now = self.now_us();
        self.worker.metrics.lock().record(now, series, value);
    }

    fn count(&mut self, counter: &str, delta: f64) {
        self.worker.metrics.lock().count(counter, delta);
    }

    fn observe(&mut self, name: &str, value: f64) {
        self.worker.metrics.lock().observe(name, value);
    }

    fn gauge(&mut self, name: &str, value: f64) {
        self.worker.metrics.lock().set_gauge(name, value);
    }

    fn trace(&mut self, event: TraceEvent) {
        // No ring buffer here (the threaded runtime is for throughput,
        // not post-mortems), but the protocol watchdogs still consume
        // every event so invariant violations surface as watchdog.*
        // counters — exactly what the sharded-net tests assert on.
        let rec = TraceRecord {
            t_us: self.worker.epoch.elapsed().as_micros() as u64,
            node: self.worker.me,
            event,
        };
        let mut m = self.worker.metrics.lock();
        self.worker.watchdogs.observe(&rec, &mut m);
        // The lineage lock is this worker's own — uncontended except
        // during a stop()-time merge.
        self.worker.lineage.lock().observe(&rec, &mut m);
    }

    fn interval(&mut self, kind: &'static str, dur_us: u64) {
        if dur_us == 0 || !self.worker.tel_enabled.load(Ordering::Relaxed) {
            return;
        }
        let now = self.worker.epoch.elapsed().as_micros() as u64;
        self.worker.intervals.lock().push(BusyInterval {
            track: self.worker.index,
            kind,
            start_us: now.saturating_sub(dur_us),
            dur_us,
        });
    }

    fn attribute(&mut self, dim: &'static str, entity: u64, weight: u64) {
        self.worker.sketch.lock().attribute(dim, entity, weight);
    }
}

/// The background sampler thread started by [`RunningNet::start_sampler`].
struct SamplerHandle {
    /// Shared with the sampler thread; [`RunningNet::telemetry`] and
    /// [`RunningNet::stop`] read the timeline out of it.
    sampler: Arc<Mutex<Sampler>>,
    stop: Arc<AtomicBool>,
    join: std::thread::JoinHandle<()>,
}

/// A started network; inject messages, then [`RunningNet::stop`].
pub struct RunningNet {
    router: Router,
    stop: Arc<AtomicBool>,
    joins: Vec<std::thread::JoinHandle<Box<dyn Node>>>,
    metrics: Vec<Arc<Mutex<Metrics>>>,
    lineages: Vec<Arc<Mutex<Lineage>>>,
    logical: Arc<Vec<LogicalEntry>>,
    /// Wall-clock zero shared with every worker; telemetry windows are
    /// stamped as microseconds since this instant.
    epoch: Instant,
    /// Receiver clones kept solely for occupancy probes (`len()`).
    receivers: Vec<Receiver<Ev>>,
    tel_enabled: Arc<AtomicBool>,
    active_ns: Vec<Arc<AtomicU64>>,
    /// Per-worker forensics interval rings, drained into the telemetry
    /// timeline (worker-index order) at [`RunningNet::stop`].
    intervals: Vec<Arc<Mutex<IntervalRing>>>,
    /// Per-worker population-sketch shards, merged (worker-index order)
    /// and drained into the telemetry timeline at [`RunningNet::stop`].
    sketches: Vec<Arc<Mutex<PopulationSketch>>>,
    /// Runtime-health gauges owned by the sampler thread (queue depth,
    /// worker utilization) — a separate shard so the sampler never
    /// writes into a worker's private metrics.
    tel_metrics: Arc<Mutex<Metrics>>,
    sampler: Option<SamplerHandle>,
    scrape: Option<TextServer>,
}

/// Merges per-worker metric shards into one consistent snapshot.
///
/// Mid-run merge semantics (the live `/metrics` endpoint and
/// [`RunningNet::metrics_snapshot`] both use this, so a scrape never
/// sees half-merged values):
///
/// * shards are merged **in worker-index order**, same as the final
///   [`RunningNet::stop`] merge — counters and histograms sum, series
///   concatenate, same-named gauges add;
/// * each shard's lock is held only while that shard is copied, so a
///   snapshot is per-shard-atomic: it never tears an individual
///   counter, but shards are copied at slightly different instants
///   (unavoidable without a stop-the-world pause, and fine for
///   monotone counters);
/// * the telemetry shard (`tel_metrics`) merges **last**, and the
///   momentary queue-depth gauges are re-probed and overwritten after
///   the merge, so gauges reflect "now", not the sampler's last window.
fn merged_snapshot(
    metrics: &[Arc<Mutex<Metrics>>],
    tel_metrics: &Arc<Mutex<Metrics>>,
    receivers: &[Receiver<Ev>],
) -> Metrics {
    let mut merged = Metrics::default();
    for m in metrics {
        merged.merge(&m.lock());
    }
    merged.merge(&tel_metrics.lock());
    let mut total = 0usize;
    for (i, rx) in receivers.iter().enumerate() {
        let depth = rx.len();
        total += depth;
        merged.set_gauge(
            &format!("{}.w{i}", names::TELEMETRY_QUEUE_DEPTH),
            depth as f64,
        );
    }
    // set_gauge (not merge-add) so the aggregate overwrites whatever
    // stale sum the per-shard merge produced.
    merged.set_gauge(names::TELEMETRY_QUEUE_DEPTH, total as f64);
    merged
}

impl RunningNet {
    /// Injects a message from the harness (sender =
    /// [`gryphon_sim::CONTROL_NODE`]), with backpressure.
    pub fn inject(&self, to: NodeId, msg: NetMsg) {
        self.router
            .deliver(gryphon_sim::CONTROL_NODE, to, msg, true);
    }

    /// Lets the network run for `d` wall-clock time.
    pub fn run_for(&self, d: Duration) {
        std::thread::sleep(d);
    }

    /// Live value of counter `name`, summed across worker shards —
    /// lets harnesses poll for progress without stopping the net.
    pub fn counter(&self, name: &str) -> f64 {
        self.metrics.iter().map(|m| m.lock().counter(name)).sum()
    }

    /// A consistent mid-run snapshot of all metric kinds (counters,
    /// gauges, histograms, series) merged across every worker shard —
    /// see `merged_snapshot` for the exact semantics. Safe to call at
    /// any point; the live `/metrics` endpoint serves exactly this.
    pub fn metrics_snapshot(&self) -> Metrics {
        merged_snapshot(&self.metrics, &self.tel_metrics, &self.receivers)
    }

    /// Arms telemetry and spawns a background sampler thread that every
    /// `interval` probes each worker's channel occupancy
    /// (`telemetry.queue_depth.w<i>`) and busy/idle utilization
    /// (`telemetry.worker_utilization.w<i>`, fraction of the window
    /// spent inside node callbacks), then feeds a merged snapshot to a
    /// [`Sampler`] — the wall-clock twin of the simulator's
    /// virtual-time sampler. Also enables per-dispatch service-time
    /// histograms on every worker. Idempotent: a second call is a
    /// no-op.
    pub fn start_sampler(&mut self, interval: Duration) {
        if self.sampler.is_some() {
            return;
        }
        self.tel_enabled.store(true, Ordering::Relaxed);
        let interval = interval.max(Duration::from_micros(1));
        let sampler = Arc::new(Mutex::new(Sampler::new(interval.as_micros() as u64)));
        // Wall-clock twin of the simulator's health engine: judge every
        // window with the default rule set, counters primed so the
        // `health.alert.*` family is visible even when nothing fires.
        let mut health = gryphon_sim::HealthEngine::new(gryphon_sim::default_rules());
        health.prime(&mut self.tel_metrics.lock());
        let stop = Arc::new(AtomicBool::new(false));
        let thread_sampler = Arc::clone(&sampler);
        let thread_stop = Arc::clone(&stop);
        let metrics = self.metrics.clone();
        let tel_metrics = Arc::clone(&self.tel_metrics);
        let receivers: Vec<Receiver<Ev>> = self.receivers.iter().map(Receiver::clone).collect();
        let active_ns: Vec<Arc<AtomicU64>> = self.active_ns.iter().map(Arc::clone).collect();
        let epoch = self.epoch;
        let join = std::thread::Builder::new()
            .name("telemetry-sampler".into())
            .spawn(move || {
                let mut last_active: Vec<u64> = vec![0; active_ns.len()];
                let mut last_wall = Instant::now();
                loop {
                    std::thread::sleep(interval);
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let now = Instant::now();
                    let window_ns = now.duration_since(last_wall).as_nanos() as u64;
                    last_wall = now;
                    {
                        let mut tm = tel_metrics.lock();
                        for (i, rx) in receivers.iter().enumerate() {
                            tm.set_gauge(
                                &format!("{}.w{i}", names::TELEMETRY_QUEUE_DEPTH),
                                rx.len() as f64,
                            );
                        }
                        for (i, a) in active_ns.iter().enumerate() {
                            let cur = a.load(Ordering::Relaxed);
                            let busy = cur.saturating_sub(last_active[i]);
                            last_active[i] = cur;
                            let util = if window_ns > 0 {
                                (busy as f64 / window_ns as f64).min(1.0)
                            } else {
                                0.0
                            };
                            tm.set_gauge(
                                &format!("{}.w{i}", names::TELEMETRY_WORKER_UTILIZATION),
                                util,
                            );
                        }
                    }
                    let snapshot = merged_snapshot(&metrics, &tel_metrics, &receivers);
                    let t_us = epoch.elapsed().as_micros() as u64;
                    let mut s = thread_sampler.lock();
                    s.sample(t_us, &snapshot);
                    for alert in health.evaluate(t_us, s.timeline()) {
                        if alert.state == gryphon_sim::AlertState::Firing {
                            tel_metrics
                                .lock()
                                .count(&format!("health.alert.{}", alert.rule), 1.0);
                        }
                        s.timeline_mut().push_alert(alert);
                    }
                }
            })
            .expect("spawn telemetry sampler");
        self.sampler = Some(SamplerHandle {
            sampler,
            stop,
            join,
        });
    }

    /// The telemetry timeline collected so far (a clone; `None` until
    /// [`RunningNet::start_sampler`] has been called).
    pub fn telemetry(&self) -> Option<Timeline> {
        self.sampler
            .as_ref()
            .map(|h| h.sampler.lock().timeline().clone())
    }

    /// Serves the merged metrics snapshot as Prometheus text over a tiny
    /// blocking-TCP endpoint (e.g. `addr = "127.0.0.1:0"`); returns the
    /// bound address. The endpoint stays up until [`RunningNet::stop`].
    ///
    /// # Errors
    ///
    /// Returns the bind error if `addr` cannot be bound.
    pub fn serve_metrics(&mut self, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        let metrics = self.metrics.clone();
        let tel_metrics = Arc::clone(&self.tel_metrics);
        let receivers: Vec<Receiver<Ev>> = self.receivers.iter().map(Receiver::clone).collect();
        // `/healthz` reports the live alert count — arm the sampler
        // before serving if health-rule evaluation should feed it.
        let health_sampler = self.sampler.as_ref().map(|h| Arc::clone(&h.sampler));
        let server = TextServer::serve_with_health(
            addr,
            move || {
                gryphon_sim::lineage::prometheus_text(&merged_snapshot(
                    &metrics,
                    &tel_metrics,
                    &receivers,
                ))
            },
            move || match &health_sampler {
                Some(s) => format!("alerts {}\n", s.lock().timeline().alerts().len()),
                None => "alerts 0\n".to_owned(),
            },
        )?;
        let bound = server.local_addr();
        self.scrape = Some(server);
        Ok(bound)
    }

    /// Stops all node threads and returns their final states.
    pub fn stop(mut self) -> NetResult {
        // Scrape endpoint and sampler go down first so neither observes
        // a half-stopped net.
        drop(self.scrape.take());
        let mut telemetry = self.sampler.take().map(|h| {
            h.stop.store(true, Ordering::Relaxed);
            let _ = h.join.join();
            Arc::try_unwrap(h.sampler)
                .map(|m| m.into_inner().into_timeline())
                .unwrap_or_else(|arc| arc.lock().timeline().clone())
        });
        self.stop.store(true, Ordering::Relaxed);
        let workers: Vec<Box<dyn Node>> = self
            .joins
            .drain(..)
            .map(|j| j.join().expect("node thread"))
            .collect();
        let mut merged = Metrics::default();
        for m in &self.metrics {
            merged.merge(&m.lock());
        }
        // The sampler's runtime-health gauges merge after the worker
        // shards, same position they hold in live snapshots.
        merged.merge(&self.tel_metrics.lock());
        // Lineage shards merge in worker-index order — the same
        // deterministic discipline as the metrics merge, so repeated
        // runs of a deterministic workload produce identical ledgers.
        // The merge also absorbs every worker's exemplar reservoir.
        let mut lineage = Lineage::default();
        for l in &self.lineages {
            lineage.merge(&l.lock());
        }
        // Drain forensics into the timeline: exemplars resolve against
        // the *merged* lineage (a span whose stages ran on different
        // workers still renders end-to-end), intervals drain in
        // worker-index order. Shed records surface as counters.
        if let Some(t) = telemetry.as_mut() {
            let mut dropped = 0;
            let drained = match lineage.exemplars_mut() {
                Some(r) => {
                    dropped += r.take_dropped();
                    r.drain_sorted()
                }
                None => Vec::new(),
            };
            for s in drained {
                let ex = Exemplar::resolve(&s, lineage.span(s.key));
                dropped += t.push_exemplar(ex);
            }
            if dropped > 0 {
                merged.count(names::FORENSICS_EXEMPLAR_DROPPED, dropped as f64);
            }
            let mut dropped = 0;
            for ring in &self.intervals {
                let mut ring = ring.lock();
                dropped += ring.take_dropped();
                for iv in ring.drain() {
                    dropped += t.push_interval(iv);
                }
            }
            if dropped > 0 {
                merged.count(names::FORENSICS_INTERVAL_DROPPED, dropped as f64);
            }
        }
        // Population-sketch shards merge in worker-index order, then the
        // merged sketch drains once — the wall-clock twin of the
        // simulator's per-window drain. Snapshots land on the timeline
        // when a sampler ran; the spectrum/dominance gauges always land
        // in the merged metrics.
        let mut sketch = PopulationSketch::new(SketchConfig::default());
        for s in &self.sketches {
            sketch.absorb(&s.lock());
        }
        if !sketch.is_empty() {
            let t_us = self.epoch.elapsed().as_micros() as u64;
            let (snaps, stats) = sketch.drain(t_us);
            if let Some(stats) = stats {
                merged.set_gauge(names::SKETCH_LAG_POPULATION, stats.population as f64);
                merged.set_gauge(names::SKETCH_LAG_P50_US, stats.p50_us as f64);
                merged.set_gauge(names::SKETCH_LAG_P99_US, stats.p99_us as f64);
                merged.set_gauge(names::SKETCH_LAG_MAX_US, stats.max_us as f64);
                merged.set_gauge(names::SKETCH_LAG_SKEW, stats.skew());
            }
            if let Some(bytes) = snaps.iter().find(|s| s.dim == DIM_SUB_BYTES) {
                merged.set_gauge(names::SKETCH_DOMINANCE_SHARE, bytes.alarm_share());
            }
            if let Some(t) = telemetry.as_mut() {
                let mut dropped = 0;
                for snap in snaps {
                    dropped += t.push_topk(snap);
                }
                if dropped > 0 {
                    merged.count(names::FORENSICS_TOPK_DROPPED, dropped as f64);
                }
            }
        }
        NetResult {
            workers,
            metrics: merged,
            lineage,
            telemetry,
            logical: Arc::clone(&self.logical),
        }
    }
}

/// Final node states and metrics after [`RunningNet::stop`].
pub struct NetResult {
    workers: Vec<Box<dyn Node>>,
    /// Per-worker metrics merged into one run-wide view.
    pub metrics: Metrics,
    /// Per-worker delivery-lineage shards merged into one run-wide
    /// ledger (worker-index order; see [`RunningNet::stop`]).
    pub lineage: Lineage,
    /// Wall-clock telemetry timeline, present when
    /// [`RunningNet::start_sampler`] ran during the net's lifetime.
    pub telemetry: Option<Timeline>,
    logical: Arc<Vec<LogicalEntry>>,
}

impl NetResult {
    /// Borrows a node's final state (shard 0 for sharded nodes).
    ///
    /// # Panics
    ///
    /// Panics on a type mismatch (impossible for handles from the same
    /// builder).
    pub fn node<T: Node + 'static>(&self, h: Handle<T>) -> &T {
        self.shard(h, 0)
    }

    /// Borrows one shard of a sharded node's final state.
    ///
    /// # Panics
    ///
    /// Panics on a type mismatch or an out-of-range shard index.
    pub fn shard<T: Node + 'static>(&self, h: Handle<T>, shard: usize) -> &T {
        let entry = &self.logical[h.id.0 as usize];
        assert_eq!(
            entry.type_id,
            TypeId::of::<Typed<T>>(),
            "handle type mismatch"
        );
        let node = self.workers[entry.workers[shard]].as_ref();
        let typed: &Typed<T> = unsafe {
            // SAFETY: TypeId verified above; nodes are never replaced.
            &*(node as *const dyn Node as *const Typed<T>)
        };
        &typed.0
    }

    /// Number of worker shards backing logical node `h`.
    pub fn shard_count<T>(&self, h: Handle<T>) -> usize {
        self.logical[h.id.0 as usize].workers.len()
    }

    /// Total protocol-watchdog violations across all workers (gap-free
    /// constream, monotone doubt, only-once logging).
    pub fn watchdog_violations(&self) -> f64 {
        self.metrics.counter(names::WATCHDOG_CONSTREAM_GAP)
            + self.metrics.counter(names::WATCHDOG_DOUBT_REGRESSION)
            + self.metrics.counter(names::WATCHDOG_DUPLICATE_LOG)
    }

    /// Exactly-once violations the merged delivery ledger flagged across
    /// all workers.
    pub fn ledger_violations(&self) -> u64 {
        self.lineage.violations()
    }
}

/// [`Executor`] adapter over the threaded runtime: spawn nodes while
/// building, then the first `inject`/`advance_us` starts the threads.
///
/// `connect` is a no-op (the net is fully connected); `advance_us`
/// sleeps wall-clock time. Call [`NetExecutor::finish`] to stop the
/// threads and obtain the merged [`NetResult`].
pub struct NetExecutor {
    state: ExecState,
}

enum ExecState {
    Building(NetBuilder),
    Running(Box<RunningNet>),
    Done,
}

impl Default for NetExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl NetExecutor {
    /// An empty, not-yet-started executor.
    pub fn new() -> Self {
        NetExecutor {
            state: ExecState::Building(NetBuilder::new()),
        }
    }

    /// Marker type for nodes spawned type-erased via [`Executor::spawn`]
    /// (they cannot be downcast back out of a [`NetResult`]).
    fn ensure_running(&mut self) -> &RunningNet {
        if let ExecState::Building(_) = self.state {
            let ExecState::Building(b) = std::mem::replace(&mut self.state, ExecState::Done) else {
                unreachable!()
            };
            self.state = ExecState::Running(Box::new(b.start()));
        }
        match &self.state {
            ExecState::Running(r) => r,
            _ => panic!("NetExecutor already finished"),
        }
    }

    /// Stops the threads (starting them first if nothing ever ran) and
    /// returns the final states + merged metrics.
    pub fn finish(mut self) -> NetResult {
        self.ensure_running();
        match std::mem::replace(&mut self.state, ExecState::Done) {
            ExecState::Running(r) => r.stop(),
            _ => unreachable!("ensure_running left executor running"),
        }
    }
}

/// Type-erased registration marker (see [`NetExecutor::ensure_running`]).
struct Opaque;

impl Executor for NetExecutor {
    fn spawn(&mut self, name: &str, node: Box<dyn Node>) -> NodeId {
        let ExecState::Building(b) = &mut self.state else {
            panic!("NetExecutor::spawn after start — register all nodes before injecting");
        };
        b.add_entry::<Opaque>(name, vec![node], TypeId::of::<Opaque>())
            .id()
    }

    fn connect(&mut self, _a: NodeId, _b: NodeId) {
        // Fully connected already.
    }

    fn inject(&mut self, to: NodeId, msg: NetMsg) {
        self.ensure_running().inject(to, msg);
    }

    fn advance_us(&mut self, us: u64) {
        self.ensure_running().run_for(Duration::from_micros(us));
    }

    fn counter(&self, name: &str) -> f64 {
        match &self.state {
            ExecState::Building(_) | ExecState::Done => 0.0,
            ExecState::Running(r) => r.counter(name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gryphon_types::{PubendId, PublishMsg, SubInterestMsg};

    struct Echo {
        got: u64,
        timer_fired: bool,
    }

    impl Node for Echo {
        fn on_start(&mut self, ctx: &mut dyn NodeCtx) {
            ctx.set_timer(5_000, TimerKey(1));
        }
        fn on_message(&mut self, from: NodeId, msg: NetMsg, ctx: &mut dyn NodeCtx) {
            self.got += 1;
            ctx.count("echo.got", 1.0);
            if from != gryphon_sim::CONTROL_NODE {
                ctx.send(from, msg);
            }
        }
        fn on_timer(&mut self, _: TimerKey, ctx: &mut dyn NodeCtx) {
            self.timer_fired = true;
            ctx.record("echo.timer", 1.0);
        }
    }

    fn dummy() -> NetMsg {
        NetMsg::SubInterest(SubInterestMsg {
            subs: vec![],
            version: 0,
        })
    }

    fn publish(p: u32) -> NetMsg {
        NetMsg::Publish(PublishMsg {
            pubend: PubendId(p),
            attrs: Default::default(),
            payload: Default::default(),
        })
    }

    #[test]
    fn messages_flow_between_threads() {
        let mut b = NetBuilder::new();
        let a = b.add_node(
            "a",
            Echo {
                got: 0,
                timer_fired: false,
            },
        );
        let c = b.add_node(
            "c",
            Echo {
                got: 0,
                timer_fired: false,
            },
        );
        let net = b.start();
        for _ in 0..100 {
            net.inject(a.id(), dummy());
        }
        net.run_for(Duration::from_millis(50));
        let result = net.stop();
        assert_eq!(result.node(a).got, 100);
        assert_eq!(result.node(c).got, 0);
        assert_eq!(result.metrics.counter("echo.got"), 100.0);
    }

    #[test]
    fn timers_fire_on_wall_clock() {
        let mut b = NetBuilder::new();
        let a = b.add_node(
            "a",
            Echo {
                got: 0,
                timer_fired: false,
            },
        );
        let net = b.start();
        net.run_for(Duration::from_millis(50));
        let result = net.stop();
        assert!(result.node(a).timer_fired, "5 ms timer within 50 ms run");
        assert_eq!(result.metrics.series("echo.timer").len(), 1);
    }

    #[test]
    fn sharded_node_routes_by_pubend_and_broadcasts_control() {
        let mut b = NetBuilder::new();
        let shards: Vec<Echo> = (0..4)
            .map(|_| Echo {
                got: 0,
                timer_fired: false,
            })
            .collect();
        let h = b.add_sharded_node("shards", shards);
        let net = b.start();
        // 8 pubends × 3 messages: pubend p lands on shard p % 4.
        for p in 0..8u32 {
            for _ in 0..3 {
                net.inject(h.id(), publish(p));
            }
        }
        // Unkeyed control traffic is broadcast to every shard.
        net.inject(h.id(), dummy());
        net.run_for(Duration::from_millis(80));
        let result = net.stop();
        assert_eq!(result.shard_count(h), 4);
        for s in 0..4 {
            // Two pubends × 3 each + 1 broadcast control message.
            assert_eq!(result.shard(h, s).got, 7, "shard {s}");
        }
        // Per-worker metrics merged on stop: 4 shards × 7 messages.
        assert_eq!(result.metrics.counter("echo.got"), 28.0);
        assert_eq!(result.watchdog_violations(), 0.0);
    }

    #[test]
    fn sampler_collects_runtime_health_series() {
        let mut b = NetBuilder::new();
        let a = b.add_node(
            "a",
            Echo {
                got: 0,
                timer_fired: false,
            },
        );
        let mut net = b.start();
        net.start_sampler(Duration::from_millis(5));
        for _ in 0..200 {
            net.inject(a.id(), dummy());
        }
        net.run_for(Duration::from_millis(60));
        // Live timeline is readable mid-run...
        let live = net.telemetry().expect("sampler armed");
        assert!(!live.is_empty(), "sampler took at least one window");
        let result = net.stop();
        // ...and the final timeline rides out on the NetResult.
        let t = result.telemetry.expect("telemetry present after stop");
        for series in [
            "telemetry.queue_depth",
            "telemetry.queue_depth.w0",
            "telemetry.worker_utilization.w0",
            "echo.got.rate",
        ] {
            assert!(
                !t.series(series).is_empty(),
                "series {series} missing; have {:?}",
                t.series_names()
            );
        }
        // Arming telemetry turns on the per-dispatch service-time
        // histogram on every worker.
        assert!(result
            .metrics
            .histogram_names()
            .contains(&names::TELEMETRY_SERVICE_TIME_US));
    }

    #[test]
    fn metrics_snapshot_is_consistent_mid_run() {
        let mut b = NetBuilder::new();
        let a = b.add_node(
            "a",
            Echo {
                got: 0,
                timer_fired: false,
            },
        );
        let net = b.start();
        for _ in 0..50 {
            net.inject(a.id(), dummy());
        }
        net.run_for(Duration::from_millis(50));
        let snap = net.metrics_snapshot();
        // All three metric kinds come back in one consistent view:
        // counters from the worker shard, plus freshly probed
        // queue-depth gauges (drained by now, so zero).
        assert_eq!(snap.counter("echo.got"), 50.0);
        assert_eq!(snap.gauge("telemetry.queue_depth"), Some(0.0));
        assert_eq!(snap.gauge("telemetry.queue_depth.w0"), Some(0.0));
        net.stop();
    }

    #[test]
    fn serve_metrics_scrapes_prometheus_text_mid_run() {
        use std::io::{Read as _, Write as _};
        let mut b = NetBuilder::new();
        let a = b.add_node(
            "a",
            Echo {
                got: 0,
                timer_fired: false,
            },
        );
        let mut net = b.start();
        let addr = net.serve_metrics("127.0.0.1:0").expect("bind scrape");
        for _ in 0..25 {
            net.inject(a.id(), dummy());
        }
        net.run_for(Duration::from_millis(50));
        let mut sock = std::net::TcpStream::connect(addr).expect("connect scrape");
        sock.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("send request");
        let mut resp = String::new();
        sock.read_to_string(&mut resp).expect("read response");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "got: {resp}");
        assert!(resp.contains("# TYPE echo_got counter"), "got: {resp}");
        assert!(resp.contains("echo_got 25"), "got: {resp}");
        assert!(
            resp.contains("# TYPE telemetry_queue_depth gauge"),
            "got: {resp}"
        );
        net.stop();
    }

    #[test]
    fn net_executor_runs_nodes() {
        let mut ex = NetExecutor::new();
        let a = Executor::spawn(
            &mut ex,
            "a",
            Box::new(Echo {
                got: 0,
                timer_fired: false,
            }),
        );
        let b = Executor::spawn(
            &mut ex,
            "b",
            Box::new(Echo {
                got: 0,
                timer_fired: false,
            }),
        );
        ex.connect(a, b);
        for _ in 0..5 {
            Executor::inject(&mut ex, a, dummy());
        }
        ex.advance_us(50_000);
        assert_eq!(ex.counter("echo.got"), 5.0);
        let result = ex.finish();
        assert_eq!(result.metrics.counter("echo.got"), 5.0);
    }
}
