//! Threaded runtime for Gryphon nodes.
//!
//! The same [`Node`] state machines that run under the
//! deterministic simulator run here on **real OS threads** connected by
//! crossbeam channels, with wall-clock timers. The paper's wall-clock
//! microbenchmarks and the `rt_pipeline` bench use this runtime; the
//! figure reproductions use the simulator (deterministic virtual time).
//!
//! Differences from the simulator, by design:
//!
//! * links deliver immediately (no modeled latency — thread scheduling
//!   provides real, not modeled, delays), so use this runtime for
//!   *throughput*, not latency shapes;
//! * there is no crash injection;
//! * determinism is not guaranteed.
//!
//! # Examples
//!
//! ```
//! use gryphon_net::NetBuilder;
//! use gryphon_sim::{Node, NodeCtx, TimerKey};
//! use gryphon_types::{NetMsg, NodeId, SubInterestMsg};
//!
//! struct Counter(u64);
//! impl Node for Counter {
//!     fn on_message(&mut self, _: NodeId, _: NetMsg, _: &mut dyn NodeCtx) { self.0 += 1; }
//!     fn on_timer(&mut self, _: TimerKey, _: &mut dyn NodeCtx) {}
//! }
//!
//! let mut net = NetBuilder::new();
//! let h = net.add_node("counter", Counter(0));
//! let running = net.start();
//! for _ in 0..10 {
//!     running.inject(h.id(), NetMsg::SubInterest(SubInterestMsg { subs: vec![], version: 0 }));
//! }
//! running.run_for(std::time::Duration::from_millis(50));
//! let result = running.stop();
//! assert_eq!(result.node::<Counter>(h).0, 10);
//! ```

use crossbeam::channel::{bounded, Sender};
use gryphon_sim::{Metrics, Node, NodeCtx, TimerKey};
use gryphon_types::{NetMsg, NodeId};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::TypeId;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

enum Ev {
    Msg(NodeId, NetMsg),
}

/// Typed handle to a node registered with [`NetBuilder::add_node`].
pub struct Handle<T> {
    id: NodeId,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Handle<T> {}

impl<T> Handle<T> {
    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }
}

impl<T> std::fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Handle({})", self.id)
    }
}

struct Typed<T>(T);

impl<T: Node + 'static> Node for Typed<T> {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx) {
        self.0.on_start(ctx)
    }
    fn on_message(&mut self, from: NodeId, msg: NetMsg, ctx: &mut dyn NodeCtx) {
        self.0.on_message(from, msg, ctx)
    }
    fn on_timer(&mut self, key: TimerKey, ctx: &mut dyn NodeCtx) {
        self.0.on_timer(key, ctx)
    }
    fn on_restart(&mut self, ctx: &mut dyn NodeCtx) {
        self.0.on_restart(ctx)
    }
}

/// Builder: register nodes, then [`NetBuilder::start`].
pub struct NetBuilder {
    nodes: Vec<(String, Box<dyn Node>, TypeId)>,
}

impl Default for NetBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl NetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        NetBuilder { nodes: Vec::new() }
    }

    /// Registers a node; its id is its registration order.
    pub fn add_node<T: Node + 'static>(&mut self, name: &str, node: T) -> Handle<T> {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes
            .push((name.to_owned(), Box::new(Typed(node)), TypeId::of::<Typed<T>>()));
        Handle {
            id,
            _marker: std::marker::PhantomData,
        }
    }

    /// Spawns one thread per node and starts them (running `on_start`).
    pub fn start(self) -> RunningNet {
        let n = self.nodes.len();
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Mutex::new(Metrics::default()));
        let epoch = Instant::now();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = bounded::<Ev>(65_536);
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let mut joins = Vec::with_capacity(n);
        let mut type_ids = Vec::with_capacity(n);
        for (i, ((name, mut node, type_id), rx)) in
            self.nodes.into_iter().zip(receivers).enumerate()
        {
            type_ids.push(type_id);
            let senders = Arc::clone(&senders);
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            let me = NodeId(i as u32);
            joins.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || {
                        let mut worker = Worker {
                            me,
                            senders,
                            metrics,
                            epoch,
                            timers: BinaryHeap::new(),
                            rng: SmallRng::seed_from_u64(me.0 as u64),
                            busy_us: 0,
                        };
                        worker.with_ctx(|node, ctx| node.on_start(ctx), node.as_mut());
                        loop {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let timeout = worker.next_deadline(Duration::from_millis(20));
                            match rx.recv_timeout(timeout) {
                                Ok(Ev::Msg(from, msg)) => {
                                    worker.with_ctx(
                                        |node, ctx| node.on_message(from, msg, ctx),
                                        node.as_mut(),
                                    );
                                }
                                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                            }
                            worker.fire_due(node.as_mut());
                        }
                        node
                    })
                    .expect("spawn node thread"),
            );
        }
        RunningNet {
            senders,
            stop,
            joins,
            metrics,
            type_ids,
        }
    }
}

#[derive(PartialEq, Eq)]
struct TimerEntry {
    deadline: Instant,
    key: TimerKey,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.deadline.cmp(&self.deadline) // min-heap
    }
}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Worker {
    me: NodeId,
    senders: Arc<Vec<Sender<Ev>>>,
    metrics: Arc<Mutex<Metrics>>,
    epoch: Instant,
    timers: BinaryHeap<TimerEntry>,
    rng: SmallRng,
    busy_us: u64,
}

impl Worker {
    fn next_deadline(&self, cap: Duration) -> Duration {
        match self.timers.peek() {
            Some(e) => e.deadline.saturating_duration_since(Instant::now()).min(cap),
            None => cap,
        }
    }

    fn fire_due(&mut self, node: &mut dyn Node) {
        loop {
            let due = matches!(self.timers.peek(),
                Some(e) if e.deadline <= Instant::now());
            if !due {
                break;
            }
            let key = self.timers.pop().expect("peeked").key;
            self.with_ctx(|n, ctx| n.on_timer(key, ctx), node);
        }
    }

    fn with_ctx(&mut self, f: impl FnOnce(&mut dyn Node, &mut dyn NodeCtx), node: &mut dyn Node) {
        // Split borrows: move timers out so the ctx can push new ones.
        let mut pending_timers = Vec::new();
        {
            let mut ctx = ThreadCtx {
                worker: self,
                new_timers: &mut pending_timers,
            };
            f(node, &mut ctx);
        }
        for (delay, key) in pending_timers {
            self.timers.push(TimerEntry {
                deadline: Instant::now() + Duration::from_micros(delay),
                key,
            });
        }
    }
}

struct ThreadCtx<'a> {
    worker: &'a mut Worker,
    new_timers: &'a mut Vec<(u64, TimerKey)>,
}

impl NodeCtx for ThreadCtx<'_> {
    fn now_us(&self) -> u64 {
        self.worker.epoch.elapsed().as_micros() as u64
    }

    fn me(&self) -> NodeId {
        self.worker.me
    }

    fn send(&mut self, to: NodeId, msg: NetMsg) {
        if let Some(tx) = self.worker.senders.get(to.0 as usize) {
            // Best-effort: a full channel drops the message, like a
            // saturated TCP connection with a dead reader; the protocols
            // recover via nacks.
            let _ = tx.try_send(Ev::Msg(self.worker.me, msg));
        }
    }

    fn set_timer(&mut self, delay_us: u64, key: TimerKey) {
        self.new_timers.push((delay_us, key));
    }

    fn rng(&mut self) -> &mut SmallRng {
        &mut self.worker.rng
    }

    fn work(&mut self, cost_us: u64) {
        self.worker.busy_us += cost_us;
    }

    fn record(&mut self, series: &str, value: f64) {
        let now = self.now_us();
        self.worker.metrics.lock().record(now, series, value);
    }

    fn count(&mut self, counter: &str, delta: f64) {
        self.worker.metrics.lock().count(counter, delta);
    }
}

/// A started network; inject messages, then [`RunningNet::stop`].
pub struct RunningNet {
    senders: Arc<Vec<Sender<Ev>>>,
    stop: Arc<AtomicBool>,
    joins: Vec<std::thread::JoinHandle<Box<dyn Node>>>,
    metrics: Arc<Mutex<Metrics>>,
    type_ids: Vec<TypeId>,
}

impl RunningNet {
    /// Injects a message from the harness (sender =
    /// [`gryphon_sim::CONTROL_NODE`]).
    pub fn inject(&self, to: NodeId, msg: NetMsg) {
        if let Some(tx) = self.senders.get(to.0 as usize) {
            let _ = tx.send(Ev::Msg(gryphon_sim::CONTROL_NODE, msg));
        }
    }

    /// Lets the network run for `d` wall-clock time.
    pub fn run_for(&self, d: Duration) {
        std::thread::sleep(d);
    }

    /// Stops all node threads and returns their final states.
    pub fn stop(self) -> NetResult {
        self.stop.store(true, Ordering::Relaxed);
        let nodes: Vec<Box<dyn Node>> =
            self.joins.into_iter().map(|j| j.join().expect("node thread")).collect();
        NetResult {
            nodes,
            metrics: self.metrics.lock().clone(),
            type_ids: self.type_ids,
        }
    }
}

/// Final node states and metrics after [`RunningNet::stop`].
pub struct NetResult {
    nodes: Vec<Box<dyn Node>>,
    /// Metrics recorded during the run.
    pub metrics: Metrics,
    type_ids: Vec<TypeId>,
}

impl NetResult {
    /// Borrows a node's final state.
    ///
    /// # Panics
    ///
    /// Panics on a type mismatch (impossible for handles from the same
    /// builder).
    pub fn node<T: Node + 'static>(&self, h: Handle<T>) -> &T {
        assert_eq!(
            self.type_ids[h.id.0 as usize],
            TypeId::of::<Typed<T>>(),
            "handle type mismatch"
        );
        let node = self.nodes[h.id.0 as usize].as_ref();
        let typed: &Typed<T> = unsafe {
            // SAFETY: TypeId verified above; nodes are never replaced.
            &*(node as *const dyn Node as *const Typed<T>)
        };
        &typed.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gryphon_types::SubInterestMsg;

    struct Echo {
        got: u64,
        timer_fired: bool,
    }

    impl Node for Echo {
        fn on_start(&mut self, ctx: &mut dyn NodeCtx) {
            ctx.set_timer(5_000, TimerKey(1));
        }
        fn on_message(&mut self, from: NodeId, msg: NetMsg, ctx: &mut dyn NodeCtx) {
            self.got += 1;
            ctx.count("echo.got", 1.0);
            if from != gryphon_sim::CONTROL_NODE {
                ctx.send(from, msg);
            }
        }
        fn on_timer(&mut self, _: TimerKey, ctx: &mut dyn NodeCtx) {
            self.timer_fired = true;
            ctx.record("echo.timer", 1.0);
        }
    }

    fn dummy() -> NetMsg {
        NetMsg::SubInterest(SubInterestMsg { subs: vec![], version: 0 })
    }

    #[test]
    fn messages_flow_between_threads() {
        let mut b = NetBuilder::new();
        let a = b.add_node("a", Echo { got: 0, timer_fired: false });
        let c = b.add_node("c", Echo { got: 0, timer_fired: false });
        let net = b.start();
        for _ in 0..100 {
            net.inject(a.id(), dummy());
        }
        net.run_for(Duration::from_millis(50));
        let result = net.stop();
        assert_eq!(result.node(a).got, 100);
        assert_eq!(result.node(c).got, 0);
        assert_eq!(result.metrics.counter("echo.got"), 100.0);
    }

    #[test]
    fn timers_fire_on_wall_clock() {
        let mut b = NetBuilder::new();
        let a = b.add_node("a", Echo { got: 0, timer_fired: false });
        let net = b.start();
        net.run_for(Duration::from_millis(50));
        let result = net.stop();
        assert!(result.node(a).timer_fired, "5 ms timer within 50 ms run");
        assert_eq!(result.metrics.series("echo.timer").len(), 1);
    }
}
