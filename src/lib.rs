//! Umbrella crate for the Gryphon durable-subscription reproduction:
//! examples and cross-crate integration tests live here.
//!
//! The implementation is in the workspace crates:
//!
//! * [`gryphon`] — brokers (PHB / intermediate / SHB), clients, PFS;
//! * [`gryphon_types`] — events, checkpoint tokens, wire messages;
//! * [`gryphon_matching`] — content-based subscription matching;
//! * [`gryphon_storage`] — log volume, event log, metadata table;
//! * [`gryphon_streams`] — knowledge/curiosity tick streams;
//! * [`gryphon_sim`] / [`gryphon_net`] — deterministic and threaded runtimes;
//! * [`gryphon_baseline`] — the MQ-style store-and-forward baseline;
//! * [`gryphon_jms`] — JMS-flavoured durable subscriptions;
//! * [`gryphon_harness`] — the paper's experiments.

pub use gryphon;
pub use gryphon_baseline;
pub use gryphon_harness;
pub use gryphon_jms;
pub use gryphon_matching;
pub use gryphon_net;
pub use gryphon_sim;
pub use gryphon_storage;
pub use gryphon_streams;
pub use gryphon_types;

/// Convenience prelude for examples and tests.
pub mod prelude {
    pub use gryphon::{
        Broker, BrokerConfig, CostModel, Pfs, PfsMode, PublisherClient, SubscriberClient,
        SubscriberConfig,
    };
    pub use gryphon_sim::{Handle, LinkParams, Node, NodeCtx, Sim, TimerKey};
    pub use gryphon_storage::MemFactory;
    pub use gryphon_types::{
        AttrValue, CheckpointToken, Event, NodeId, PubendId, SubscriberId, Timestamp,
    };
}
