#!/usr/bin/env bash
# Regenerates the checked-in hot-path bench baselines.
#
# Runs the matching ablation and the threaded pipeline benches with the
# criterion stub's CRITERION_JSON hook enabled, then assembles the NDJSON
# lines into two JSON arrays at the repo root:
#
#   BENCH_matching.json     — matching + matching_hot (interned scratch
#                             index vs the legacy per-event HashMap
#                             counter, plus naive-scan reference)
#   BENCH_rt_pipeline.json  — publish→delivery burst, single child and
#                             2-way fan-out with/without knowledge batching
#   BENCH_shb_scale.json    — SHB slab hot paths (steady delivery,
#                             park/rehydrate, slot-recycling churn) at
#                             10k and 100k idle durable subscriptions
#   BENCH_log_volume.json   — segmented-volume read/append/chop paths plus
#                             the group-commit fan-out: 8 concurrent
#                             committers vs serialized per-caller sync on
#                             a modeled-latency device and on real files
#
# Numbers are machine-relative: compare against the baseline re-run on the
# same machine, not across machines. See EXPERIMENTS.md for how to read
# the files.
set -euo pipefail
cd "$(dirname "$0")/.."

# Baselines are recorded with the contention profiler armed, so its
# (bounded) overhead is inside every threshold the perf gate enforces —
# "always-on" profiling can never silently regress the hot paths.
export GRYPHON_PROFILE=1

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

ndjson_to_array() {
  # $1: NDJSON file, $2: output JSON file
  {
    echo '['
    paste -sd, "$1"
    echo ']'
  } >"$2"
}

echo "== matching benches =="
: >"$tmp/matching.ndjson"
CRITERION_JSON="$tmp/matching.ndjson" \
  cargo bench -p gryphon-bench --bench matching --bench matching_hot
ndjson_to_array "$tmp/matching.ndjson" BENCH_matching.json

echo "== rt_pipeline bench =="
: >"$tmp/rt_pipeline.ndjson"
CRITERION_JSON="$tmp/rt_pipeline.ndjson" \
  cargo bench -p gryphon-bench --bench rt_pipeline
ndjson_to_array "$tmp/rt_pipeline.ndjson" BENCH_rt_pipeline.json

echo "== shb_scale bench =="
: >"$tmp/shb_scale.ndjson"
CRITERION_JSON="$tmp/shb_scale.ndjson" \
  cargo bench -p gryphon-bench --bench shb_scale
ndjson_to_array "$tmp/shb_scale.ndjson" BENCH_shb_scale.json

echo "== log_volume benches =="
: >"$tmp/log_volume.ndjson"
CRITERION_JSON="$tmp/log_volume.ndjson" \
  cargo bench -p gryphon-bench --bench log_volume --bench log_volume_commit
ndjson_to_array "$tmp/log_volume.ndjson" BENCH_log_volume.json

echo "wrote BENCH_matching.json, BENCH_rt_pipeline.json, BENCH_shb_scale.json and BENCH_log_volume.json"
