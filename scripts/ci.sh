#!/usr/bin/env bash
# Offline-friendly CI gate: everything here runs without network access
# (all dependencies are vendored in-tree; see Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --check

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== benches compile =="
cargo bench --workspace --no-run

echo "== build with observability compiled out =="
cargo build -p gryphon-bench --no-default-features

echo "CI OK"
