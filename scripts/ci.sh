#!/usr/bin/env bash
# Offline-friendly CI gate: everything here runs without network access
# (all dependencies are vendored in-tree; see Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --check

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== durability: crash recovery + codec fuzz =="
# The on-disk format gate: torn-tail / bit-flip recovery property tests
# and the codec truncation/garbage fuzz (storage lib proptests), real-file
# kill-style recovery, the ≥3× group-commit win, and the broker-level
# "a chopped or lost tick is never answered S after recovery" acceptance
# test. Runs a second time here so a failure is attributed to the
# durability engine even if an earlier suite also trips over it.
cargo test -q -p gryphon-storage --lib prop_tests
cargo test -q -p gryphon-storage --test file_kill --test group_commit_speedup
cargo test -q -p gryphon --test recovery_answer

echo "== full stack with delivery ledger armed =="
# Debug profile arms the exactly-once ledger (panic on violation), so a
# duplicate or phantom delivery anywhere in these runs aborts the test.
cargo test -q --test full_stack --test lineage

# Validates Prometheus text exposition format: every line is a comment
# (# HELP/# TYPE) or "name{labels} value"; every sample name must trace
# back to a # TYPE declaration (summaries expose <name>_sum and
# <name>_count series). Used for both the xp snapshot export and the
# live mid-run scrape below.
validate_prom() {
  awk '
    /^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* / { if ($2 == "TYPE") typed[$3]=1; next }
    /^#/ { print "bad comment line " NR ": " $0; bad=1; next }
    /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$/ {
      name=$1; sub(/\{.*/, "", name);
      base=name; sub(/_(sum|count)$/, "", base);
      if (!(name in typed) && !(base in typed)) {
        print "undeclared sample " NR ": " $0; bad=1
      }
      next
    }
    /./ { print "malformed line " NR ": " $0; bad=1 }
    END { exit bad }
  ' "$1"
}

echo "== prometheus snapshot parses =="
rm -rf target/ci-prom
cargo run -q --release -p gryphon-bench --bin xp -- --quick --prom-out target/ci-prom fig4
prom="target/ci-prom/fig4.prom"
test -s "$prom" || { echo "missing $prom"; exit 1; }
validate_prom "$prom"
echo "ok: $(grep -c '^# TYPE' "$prom") metric families in $prom"

echo "== run bundles and doctor =="
# One flag writes a complete diagnosis bundle; the doctor then proves
# the run healthy (check: replayed health rules fire nothing, invariant
# counters zero), proves a same-workload different-seed run inside the
# diff thresholds, and proves the diff gate CAN fail by diffing against
# a deliberately degraded broker config (--degrade).
rm -rf target/ci-bundles
xp() { cargo run -q --release -p gryphon-bench --bin xp -- "$@"; }
xp --quick --bundle-out target/ci-bundles/clean latency fig4
xp --quick --bundle-out target/ci-bundles/reseed --seed-offset 1 fig4
xp --quick --bundle-out target/ci-bundles/degraded --degrade fig4
for f in manifest.json metrics.csv timeline.ndjson alerts.ndjson snapshot.prom; do
  test -s "target/ci-bundles/clean/latency/$f" || { echo "bundle missing $f"; exit 1; }
done
validate_prom target/ci-bundles/clean/latency/snapshot.prom
grep -q '^health_alert_' target/ci-bundles/clean/latency/snapshot.prom \
  || { echo "bundle snapshot missing health.alert.* families"; exit 1; }
xp doctor check target/ci-bundles/clean/latency
xp doctor diff target/ci-bundles/clean/fig4 target/ci-bundles/reseed/fig4

# Million-subscriber memory model, scaled down (--quick: 20k durable
# subs): the bundle must carry the bytes-per-idle-sub gauge on its
# timeline, and doctor diff guards that series between runs.
xp --quick --bundle-out target/ci-bundles/clean mega_subs
xp --quick --bundle-out target/ci-bundles/rerun mega_subs
grep -q 'telemetry.shb.bytes_per_idle_sub' target/ci-bundles/clean/mega_subs/timeline.ndjson \
  || { echo "mega_subs bundle missing bytes_per_idle_sub series"; exit 1; }
xp doctor check target/ci-bundles/clean/mega_subs
xp doctor diff target/ci-bundles/clean/mega_subs target/ci-bundles/rerun/mega_subs
if xp doctor diff target/ci-bundles/clean/fig4 target/ci-bundles/degraded/fig4; then
  echo "doctor diff failed to flag the degraded run"; exit 1
fi
echo "ok: bundles written, check clean, diff gate proven able to fail"

echo "== top-K attribution: planted slow consumer =="
# The --slow-sub drill plants one subscriber with an ancient checkpoint
# (DESIGN.md §18); the run itself asserts the sketch names it and that
# lag_skew fires then clears. Here the bundle is additionally checked
# from the outside: the planted entity (id = --subs) is on the topk
# timeline, both alert transitions landed in alerts.ndjson, and the
# labeled topk_* gauges pass the same Prometheus grammar gate as every
# other export.
xp --quick --slow-sub --subs 2000 --bundle-out target/ci-bundles/slow mega_subs
slow=target/ci-bundles/slow/mega_subs
grep -q '"dim":"slowest_subs_by_lag"' "$slow/topk.ndjson" \
  || { echo "slow-sub bundle missing the lag dimension"; exit 1; }
grep -q '"entity":2000' "$slow/topk.ndjson" \
  || { echo "planted subscriber 2000 absent from topk.ndjson"; exit 1; }
grep -q '"rule":"lag_skew".*"state":"firing".*top slowest_subs_by_lag entity 2000' "$slow/alerts.ndjson" \
  || { echo "firing lag_skew alert does not name the planted laggard"; exit 1; }
grep -q '"rule":"lag_skew".*"state":"cleared"' "$slow/alerts.ndjson" \
  || { echo "lag_skew never cleared after recovery"; exit 1; }
validate_prom "$slow/snapshot.prom"
grep -q '^topk_weight{dim="slowest_subs_by_lag",entity="2000"}' "$slow/snapshot.prom" \
  || { echo "snapshot.prom missing the labeled topk_weight gauge"; exit 1; }
xp doctor inspect "$slow" --topk | grep -q '^## top-k attribution' \
  || { echo "doctor inspect rendered no top-k section"; exit 1; }
echo "ok: planted laggard attributed, alert fired+cleared, labeled gauges parse"

echo "== tail forensics: exemplars + chrome trace export =="
# The degraded fig4 bundle is the interesting one: its inflated tail
# must surface exemplars, and the exported Chrome trace must be a
# structurally valid trace-event stream (one event per line — see
# crates/harness/src/trace_export.rs). Validated with awk, no JSON dep:
# every event line carries pid/tid, only known phase letters appear,
# X slices carry ts+dur, and async b/e events balance exactly.
validate_trace() {
  awk '
    NR==1 { if ($0 != "[") { print "missing opening ["; bad=1 } next }
    /^\]$/ { saw_end=1; next }
    /^\{/ {
      line=$0
      if (line !~ /"pid":/) { print "no pid line " NR ": " line; bad=1 }
      if (line !~ /"tid":/) { print "no tid line " NR ": " line; bad=1 }
      if (match(line, /"ph":"[^"]"/)) {
        ph = substr(line, RSTART+6, 1)
        if (ph !~ /[XbeiM]/) { print "unknown phase " ph " line " NR; bad=1 }
        if (ph == "X" && (line !~ /"ts":/ || line !~ /"dur":/)) {
          print "X slice missing ts/dur line " NR ": " line; bad=1
        }
        if (ph == "b") begins++
        if (ph == "e") ends++
      } else { print "no phase line " NR ": " line; bad=1 }
      events++
      next
    }
    /./ { print "unexpected line " NR ": " $0; bad=1 }
    END {
      if (!saw_end) { print "missing closing ]"; bad=1 }
      if (begins != ends) { print "unbalanced async spans: " begins " b vs " ends " e"; bad=1 }
      if (events == 0) { print "empty trace"; bad=1 }
      exit bad
    }
  ' "$1"
}
trace="target/ci-bundles/fig4.trace.json"
xp doctor export-trace target/ci-bundles/degraded/fig4 -o "$trace"
validate_trace "$trace"
test -s target/ci-bundles/degraded/fig4/exemplars.ndjson \
  || { echo "degraded fig4 bundle captured no exemplars"; exit 1; }
xp doctor inspect target/ci-bundles/degraded/fig4 --exemplars \
  | grep -q '^  exemplar ' \
  || { echo "doctor inspect --exemplars rendered no exemplars"; exit 1; }
echo "ok: $(grep -c '"ph":"X"' "$trace") slices, $(grep -c '"ph":"b"' "$trace") span stages validated in $trace"

echo "== live /metrics scrape (mid-run) =="
# scrape_smoke runs a real threaded pipeline, fetches /metrics over TCP
# while the net is still running, and prints the body; the same grammar
# gate applies to the live endpoint as to the snapshot export.
scrape="target/ci-prom/scrape.prom"
cargo run -q --release -p gryphon-bench --bin scrape_smoke >"$scrape"
test -s "$scrape" || { echo "missing $scrape"; exit 1; }
validate_prom "$scrape"
echo "ok: $(grep -c '^# TYPE' "$scrape") metric families served live"

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== benches compile =="
cargo bench --workspace --no-run

echo "== perf regression gate =="
# Re-measures the checked-in baselines and fails on regressions past the
# per-benchmark thresholds (perf_gate --help for the policy). Baselines
# are machine-relative: after an intentional hot-path change, regenerate
# them with scripts/bench.sh on the same machine and commit the result.
rm -rf target/ci-bench
mkdir -p target/ci-bench
# The gate measures with the contention profiler armed (the always-on
# production posture); scripts/bench.sh records baselines the same way,
# so profiler overhead is pinned inside the thresholds.
export GRYPHON_PROFILE=1
CRITERION_JSON="$PWD/target/ci-bench/matching.ndjson" \
  cargo bench -p gryphon-bench --bench matching --bench matching_hot >/dev/null
CRITERION_JSON="$PWD/target/ci-bench/rt_pipeline.ndjson" \
  cargo bench -p gryphon-bench --bench rt_pipeline >/dev/null
CRITERION_JSON="$PWD/target/ci-bench/shb_scale.ndjson" \
  cargo bench -p gryphon-bench --bench shb_scale >/dev/null
CRITERION_JSON="$PWD/target/ci-bench/log_volume.ndjson" \
  cargo bench -p gryphon-bench --bench log_volume --bench log_volume_commit >/dev/null
cargo run -q --release -p gryphon-bench --bin perf_gate -- --strict \
  BENCH_matching.json target/ci-bench/matching.ndjson \
  BENCH_rt_pipeline.json target/ci-bench/rt_pipeline.ndjson \
  BENCH_shb_scale.json target/ci-bench/shb_scale.ndjson \
  BENCH_log_volume.json target/ci-bench/log_volume.ndjson

echo "== build with observability compiled out =="
cargo build -p gryphon-bench --no-default-features

echo "CI OK"
