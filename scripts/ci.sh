#!/usr/bin/env bash
# Offline-friendly CI gate: everything here runs without network access
# (all dependencies are vendored in-tree; see Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --check

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== full stack with delivery ledger armed =="
# Debug profile arms the exactly-once ledger (panic on violation), so a
# duplicate or phantom delivery anywhere in these runs aborts the test.
cargo test -q --test full_stack --test lineage

echo "== prometheus snapshot parses =="
rm -rf target/ci-prom
cargo run -q --release -p gryphon-bench --bin xp -- --quick --prom-out target/ci-prom fig4
prom="target/ci-prom/fig4.prom"
test -s "$prom" || { echo "missing $prom"; exit 1; }
# Validate text exposition format: every line is a comment (# HELP/# TYPE)
# or "name{labels} value"; every sample name must trace back to a # TYPE
# declaration (summaries expose <name>_sum and <name>_count series).
awk '
  /^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* / { if ($2 == "TYPE") typed[$3]=1; next }
  /^#/ { print "bad comment line " NR ": " $0; bad=1; next }
  /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$/ {
    name=$1; sub(/\{.*/, "", name);
    base=name; sub(/_(sum|count)$/, "", base);
    if (!(name in typed) && !(base in typed)) {
      print "undeclared sample " NR ": " $0; bad=1
    }
    next
  }
  /./ { print "malformed line " NR ": " $0; bad=1 }
  END { exit bad }
' "$prom"
echo "ok: $(grep -c '^# TYPE' "$prom") metric families in $prom"

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== benches compile =="
cargo bench --workspace --no-run

echo "== build with observability compiled out =="
cargo build -p gryphon-bench --no-default-features

echo "CI OK"
