//! JMS-style durable subscriptions (paper §5.2).
//!
//! ```text
//! cargo run --example jms_sessions
//! ```
//!
//! For applications written to the Java Message Service API, the broker
//! — not the client — stores the subscription's checkpoint token, and in
//! auto-acknowledge mode commits it after *every* consumed message. This
//! example creates a session with two durable topic subscribers (one
//! auto-ack, one lazy), shows the selector syntax, and demonstrates that
//! an auto-ack subscriber's throughput is bounded by the metadata-store
//! commit rate — the effect the paper measures in §5.2.

use gryphon::{Broker, BrokerConfig};
use gryphon_jms::{AckMode, Session, Topic};
use gryphon_sim::Sim;
use gryphon_storage::MemFactory;
use gryphon_types::PubendId;

fn main() {
    let mut sim = Sim::new(3);
    let broker = sim.add_typed_node(
        "broker",
        Broker::new(0, Box::new(MemFactory::new()), BrokerConfig::default())
            .hosting_pubends([PubendId(0)])
            .hosting_subscribers(),
    );

    let session = Session::new("billing-app", broker.id());
    let topic = Topic::new("invoices");

    // Auto-acknowledge: one broker-side checkpoint commit per message.
    let audit = session.create_durable_subscriber(&topic, "audit-trail", AckMode::AutoAcknowledge);
    println!("subscription '{}' → id {:?}", audit.name(), audit.id());
    println!("filter: {}", audit.filter());
    let audit = sim.add_typed_node("audit", audit.into_node());
    sim.connect(audit.id(), broker.id(), 500);

    // Lazy acknowledgment with a message selector.
    let big = session.create_durable_subscriber_with_selector(
        &topic,
        "big-invoices",
        "amount >= 1000",
        AckMode::DupsOkAcknowledge,
    );
    println!("subscription '{}' filter: {}", big.name(), big.filter());
    let big = sim.add_typed_node("big", big.into_node());
    sim.connect(big.id(), broker.id(), 500);

    // A publisher on the topic: 500 invoices/s, alternating amounts.
    let publisher = sim.add_typed_node(
        "publisher",
        session
            .create_publisher(&topic, broker.id(), PubendId(0), 500.0)
            .with_attrs({
                let name = topic.name().to_owned();
                move |seq, _| {
                    let mut a = gryphon_types::Attributes::new();
                    a.insert("topic".into(), name.clone().into());
                    a.insert("amount".into(), ((seq % 20) as i64 * 100).into());
                    a
                }
            }),
    );
    sim.connect(publisher.id(), broker.id(), 500);

    println!("\nrunning 15 virtual seconds at 500 invoices/s...");
    sim.run_until(15_000_000);

    let audit_client = sim.node_ref(audit);
    let big_client = sim.node_ref(big);
    let commits = sim.metrics().counter("shb.ct_commits");
    println!(
        "\naudit-trail (auto-ack) : {} messages",
        audit_client.events_received()
    );
    println!(
        "big-invoices (lazy ack): {} messages",
        big_client.events_received()
    );
    println!("checkpoint commits     : {commits:.0}");
    println!(
        "\nauto-ack is commit-bound: the audit trail consumed only {:.0}% of its offered load \
         (each message waits for its checkpoint transaction), while the lazy subscriber \
         consumed {:.0}% of its own.",
        audit_client.events_received() as f64 / 7_500.0 * 100.0,
        big_client.events_received() as f64 / 3_750.0 * 100.0
    );
    assert_eq!(audit_client.order_violations(), 0);
    assert_eq!(big_client.order_violations(), 0);
    assert!(commits > 0.0);
    // Fractions of their own offered loads: auto-ack (matches all 500
    // ev/s) is commit-bound; the lazy subscriber (matches half) keeps up.
    let auto_fraction = audit_client.events_received() as f64 / 7_500.0;
    let lazy_fraction = big_client.events_received() as f64 / 3_750.0;
    assert!(
        auto_fraction < 0.8 && lazy_fraction > 0.9,
        "auto-ack should be commit-bound ({auto_fraction:.2}) while lazy keeps up ({lazy_fraction:.2})"
    );
}
