//! Quickstart: a 2-broker Gryphon network with one durable subscriber.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a publisher-hosting broker (PHB) and a subscriber-hosting
//! broker (SHB), publishes a stream of events, disconnects the durable
//! subscriber for two seconds at a time, and shows that it receives every
//! matching event exactly once, in order — each missed interval recovered
//! through the persistent filtering subsystem without the events ever
//! being logged anywhere but the PHB.

use gryphon::{Broker, BrokerConfig, PublisherClient, SubscriberClient, SubscriberConfig};
use gryphon_sim::Sim;
use gryphon_storage::MemFactory;
use gryphon_types::{PubendId, SubscriberId};

fn main() {
    let mut sim = Sim::new(42);

    // The publisher-hosting broker: the ONLY place events are logged.
    let phb = sim.add_typed_node(
        "phb",
        Broker::new(0, Box::new(MemFactory::new()), BrokerConfig::default())
            .hosting_pubends([PubendId(0)]),
    );
    // The subscriber-hosting broker: consolidated stream + PFS.
    let shb = sim.add_typed_node(
        "shb",
        Broker::new(1, Box::new(MemFactory::new()), BrokerConfig::default()).hosting_subscribers(),
    );
    sim.node(phb).add_child(shb.id());
    sim.node(shb).set_parent(phb.id());
    sim.connect(phb.id(), shb.id(), 1_000); // 1 ms broker link

    // A publisher: 100 ev/s, alternating two classes.
    let publisher = sim.add_typed_node(
        "publisher",
        PublisherClient::new(phb.id(), PubendId(0), 100.0).with_attrs(|seq, _| {
            let mut attrs = gryphon_types::Attributes::new();
            attrs.insert("class".into(), ((seq % 2) as i64).into());
            attrs
        }),
    );
    sim.connect(publisher.id(), phb.id(), 500);

    // A durable subscriber for class 0 that disconnects for 2 s every 6 s.
    let subscriber = sim.add_typed_node(
        "subscriber",
        SubscriberClient::new(
            SubscriberId(1),
            shb.id(),
            "class = 0",
            SubscriberConfig {
                collect: true,
                disconnect_period_us: Some(6_000_000),
                disconnect_duration_us: 2_000_000,
                ..SubscriberConfig::default()
            },
        ),
    );
    sim.connect(subscriber.id(), shb.id(), 500);

    println!("running 20 virtual seconds (publisher: 100 ev/s, subscriber matches half)...");
    sim.run_until(20_000_000);

    let client = sim.node_ref(subscriber);
    let seqs: Vec<i64> = client
        .received()
        .iter()
        .filter(|r| r.kind == "event")
        .filter_map(|r| r.seq)
        .collect();
    println!("events received : {}", client.events_received());
    println!("gaps            : {}", client.gaps_received());
    println!("order violations: {}", client.order_violations());
    println!("checkpoint token: {}", client.checkpoint());
    println!(
        "catchups        : {:?} ms",
        client
            .catchup_durations_ms()
            .iter()
            .map(|d| d.round())
            .collect::<Vec<_>>()
    );

    // Exactly-once check against ground truth: class-0 events carry the
    // even sequence numbers.
    let exact = seqs.iter().enumerate().all(|(i, &s)| s == 2 * i as i64);
    println!(
        "exactly-once    : {}",
        if exact {
            "yes (the exact prefix of even _seq numbers)"
        } else {
            "NO — BUG"
        }
    );
    assert!(exact);
    assert!(client.events_received() > 800);
    assert_eq!(client.order_violations(), 0);
}
