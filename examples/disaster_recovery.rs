//! Disaster recovery: broker failure and early release.
//!
//! ```text
//! cargo run --example disaster_recovery
//! ```
//!
//! The paper's second motivating use: events "recorded reliably by data
//! backup applications, at multiple locations, for disaster recovery".
//! This example shows the two fault-tolerance stories:
//!
//! 1. the **SHB crashes** for five seconds — its durable state
//!    (`latestDelivered`, `released(s,p)`, the PFS log volume) survives,
//!    the constream re-nacks what it missed, and every backup site
//!    resumes exactly once;
//! 2. a **misbehaving backup site** stays away beyond the administrative
//!    `maxRetain` policy — the pubend early-releases its storage and the
//!    laggard receives an explicit **gap notification** instead of
//!    silently missing data, while well-behaved sites are unaffected.

use gryphon::{Broker, BrokerConfig, PublisherClient, SubscriberClient, SubscriberConfig};
use gryphon_sim::Sim;
use gryphon_storage::MemFactory;
use gryphon_types::{PubendId, SubscriberId};

fn main() {
    let mut sim = Sim::new(11);
    let config = BrokerConfig {
        // Administrative early release: discard events older than 6 s of
        // stream time once every well-behaved subscriber has seen them.
        max_retain_ticks: Some(6_000),
        // A bounded broker cache, so early-released data is truly gone.
        cache_window_ticks: 2_000,
        ..BrokerConfig::default()
    };
    let phb = sim.add_typed_node(
        "primary-site",
        Broker::new(0, Box::new(MemFactory::new()), config.clone()).hosting_pubends([PubendId(0)]),
    );
    let shb = sim.add_typed_node(
        "backup-hub",
        Broker::new(1, Box::new(MemFactory::new()), config).hosting_subscribers(),
    );
    sim.node(phb).add_child(shb.id());
    sim.node(shb).set_parent(phb.id());
    sim.connect(phb.id(), shb.id(), 1_000);

    let feed = sim.add_typed_node(
        "change-feed",
        PublisherClient::new(phb.id(), PubendId(0), 100.0),
    );
    sim.connect(feed.id(), phb.id(), 500);

    // Two well-behaved backup sites and one chronically absent one.
    let mut sites = Vec::new();
    for (i, name) in ["backup-east", "backup-west"].iter().enumerate() {
        let site = sim.add_typed_node(
            name,
            SubscriberClient::new(
                SubscriberId(i as u64 + 1),
                shb.id(),
                "",
                SubscriberConfig {
                    probe_interval_us: 1_000_000,
                    ..SubscriberConfig::default()
                },
            ),
        );
        sim.connect(site.id(), shb.id(), 500);
        sites.push(site);
    }
    let laggard = sim.add_typed_node(
        "backup-flaky",
        SubscriberClient::new(
            SubscriberId(9),
            shb.id(),
            "",
            SubscriberConfig {
                // Away for 12 s every 16 s — far beyond maxRetain.
                disconnect_period_us: Some(16_000_000),
                disconnect_duration_us: 12_000_000,
                probe_interval_us: 1_000_000,
                ..SubscriberConfig::default()
            },
        ),
    );
    sim.connect(laggard.id(), shb.id(), 500);

    // Part 1: crash the backup hub (SHB) at t=5 s for 5 s.
    println!("phase 1: crashing the backup hub (SHB) at t=5s for 5s...");
    sim.schedule_crash(shb.id(), 5_000_000, 5_000_000);
    sim.run_until(15_000_000);
    for (site, name) in sites.iter().zip(["backup-east", "backup-west"]) {
        let s = sim.node_ref(*site);
        println!(
            "  {name}: {} events, {} gaps, {} order violations (crash recovered)",
            s.events_received(),
            s.gaps_received(),
            s.order_violations()
        );
        assert_eq!(s.order_violations(), 0);
        assert_eq!(s.gaps_received(), 0, "well-behaved sites never see gaps");
    }

    // Part 2: keep running; the flaky site's long absences cross the
    // early-release horizon.
    println!("phase 2: running to t=60s; the flaky site is away 12s of every 16s...");
    sim.run_until(60_000_000);
    let flaky = sim.node_ref(laggard);
    println!(
        "  backup-flaky: {} events, {} GAP notifications, {} order violations",
        flaky.events_received(),
        flaky.gaps_received(),
        flaky.order_violations()
    );
    assert!(
        flaky.gaps_received() > 0,
        "the laggard must be told explicitly that data was discarded"
    );
    assert_eq!(flaky.order_violations(), 0);
    for (site, name) in sites.iter().zip(["backup-east", "backup-west"]) {
        let s = sim.node_ref(*site);
        assert_eq!(
            s.gaps_received(),
            0,
            "{name} must be unaffected by early release"
        );
        assert_eq!(s.order_violations(), 0);
    }
    println!(
        "\nwell-behaved sites: exactly-once with zero gaps; the misbehaving site got explicit \
         gap notifications instead of silent loss — storage at the primary stayed bounded."
    );
}
