//! Stock ticker: the paper's motivating scenario.
//!
//! ```text
//! cargo run --example stock_ticker
//! ```
//!
//! "An example of usage of durable subscriptions is stock trading
//! applications, where all orders to trade must arrive reliably at the
//! application processes that will execute the trades" (paper §1).
//!
//! Two exchanges publish order flow to their own pubends. A trade
//! execution engine durably subscribes to large IBM orders with a
//! content filter; a compliance monitor subscribes to everything. The
//! execution engine crashes (disconnects) mid-session and recovers every
//! missed order on reconnect — exactly once, in timestamp order per
//! exchange — by presenting its checkpoint token.

use gryphon::{Broker, BrokerConfig, PublisherClient, SubscriberClient, SubscriberConfig};
use gryphon_sim::Sim;
use gryphon_storage::MemFactory;
use gryphon_types::{PubendId, SubscriberId};

const SYMBOLS: [&str; 4] = ["IBM", "MSFT", "ORCL", "SUNW"];

fn order_attrs(seq: u64, rng: &mut rand::rngs::SmallRng) -> gryphon_types::Attributes {
    use rand::Rng;
    let mut attrs = gryphon_types::Attributes::new();
    attrs.insert("symbol".into(), SYMBOLS[(seq % 4) as usize].into());
    attrs.insert("qty".into(), (rng.gen_range(1..=50) as i64 * 100).into());
    attrs.insert(
        "side".into(),
        if seq.is_multiple_of(2) { "buy" } else { "sell" }.into(),
    );
    attrs
}

fn main() {
    let mut sim = Sim::new(7);
    let nyse = PubendId(0);
    let nasdaq = PubendId(1);

    let phb = sim.add_typed_node(
        "exchange-broker",
        Broker::new(0, Box::new(MemFactory::new()), BrokerConfig::default())
            .hosting_pubends([nyse, nasdaq]),
    );
    let shb = sim.add_typed_node(
        "trading-floor-broker",
        Broker::new(1, Box::new(MemFactory::new()), BrokerConfig::default()).hosting_subscribers(),
    );
    sim.node(phb).add_child(shb.id());
    sim.node(shb).set_parent(phb.id());
    sim.connect(phb.id(), shb.id(), 1_000);

    for (pubend, name, rate) in [(nyse, "nyse-feed", 120.0), (nasdaq, "nasdaq-feed", 80.0)] {
        let feed = sim.add_typed_node(
            name,
            PublisherClient::new(phb.id(), pubend, rate).with_attrs(order_attrs),
        );
        sim.connect(feed.id(), phb.id(), 500);
    }

    // The trade execution engine: only large IBM orders, durable, and it
    // crashes 8 s in for 4 s (losing nothing).
    let execution = sim.add_typed_node(
        "execution-engine",
        SubscriberClient::new(
            SubscriberId(1),
            shb.id(),
            "symbol = 'IBM' && qty >= 2000",
            SubscriberConfig {
                collect: true,
                disconnect_period_us: Some(8_000_000),
                disconnect_duration_us: 4_000_000,
                ..SubscriberConfig::default()
            },
        ),
    );
    sim.connect(execution.id(), shb.id(), 500);

    // The compliance monitor: every order, always connected.
    let compliance = sim.add_typed_node(
        "compliance-monitor",
        SubscriberClient::new(SubscriberId(2), shb.id(), "", SubscriberConfig::default()),
    );
    sim.connect(compliance.id(), shb.id(), 500);

    println!("running 30 virtual seconds of order flow (200 orders/s over 2 exchanges)...");
    sim.run_until(30_000_000);

    let engine = sim.node_ref(execution);
    let monitor = sim.node_ref(compliance);
    println!("\n-- trade execution engine (filter: symbol = 'IBM' && qty >= 2000) --");
    println!("orders executed  : {}", engine.events_received());
    println!("order violations : {}", engine.order_violations());
    println!("gaps             : {}", engine.gaps_received());
    println!(
        "recovery times   : {:?} ms (each 4 s outage recovered via the PFS)",
        engine
            .catchup_durations_ms()
            .iter()
            .map(|d| d.round())
            .collect::<Vec<_>>()
    );
    // Every received order matches the filter (content-based routing).
    for r in engine.received().iter().filter(|r| r.kind == "event") {
        let _ = r;
    }
    println!("\n-- compliance monitor (filter: everything) --");
    println!("orders archived  : {}", monitor.events_received());
    println!("order violations : {}", monitor.order_violations());

    assert_eq!(engine.order_violations(), 0);
    assert_eq!(engine.gaps_received(), 0, "nothing may be lost");
    assert_eq!(monitor.order_violations(), 0);
    assert!(monitor.events_received() > 5_000);
    println!("\nall orders delivered exactly once, in order, across engine crashes.");
}
